(* Quickstart: write a vector loop once, produce one Liquid binary, and
   run it everywhere — a plain scalar core, and cores with 2..16-lane
   SIMD accelerators — with identical results and growing speedups.

   Run with: dune exec examples/quickstart.exe *)

open Liquid_isa
open Liquid_prog
open Liquid_scalarize
module Cpu = Liquid_pipeline.Cpu
module Memory = Liquid_machine.Memory
module Stats = Liquid_machine.Stats

let () =
  (* 1. A kernel in the vector IR: y[i] <- 3*x[i] + y[i] over 256
     elements, re-run for 10 frames by scalar glue code. *)
  let open Build in
  let saxpy =
    {
      Vloop.name = "saxpy";
      count = 256;
      body =
        [
          vld (v 1) "x";
          vmul (v 1) (v 1) (vi 3);
          vld (v 2) "y";
          vadd (v 1) (v 1) (vr (v 2));
          vst (v 1) "y";
        ];
      reductions = [];
    }
  in
  let program =
    {
      Vloop.name = "quickstart";
      sections =
        [
          Vloop.Code [ mov (r 15) 0; label "frame" ];
          Vloop.Loop saxpy;
          Vloop.Code
            [ addi (r 15) (r 15) 1; cmp (r 15) (i 10); b ~cond:Cond.Lt "frame" ];
        ];
      data =
        [
          Data.make ~name:"x" ~esize:Esize.Word (Array.init 256 (fun i -> i));
          Data.make ~name:"y" ~esize:Esize.Word (Array.init 256 (fun i -> 1000 - i));
        ];
    }
  in

  (* 2. Compile ONE binary: the vector loop is re-expressed in the scalar
     ISA and outlined behind a region branch-and-link. *)
  let liquid = Codegen.liquid program in
  let image = Image.of_program liquid in
  Format.printf "The Liquid binary is pure scalar code (%d instructions).@.@."
    (Array.length image.Image.code);

  (* 3. Run the SAME binary on machines of every flavour. *)
  let baseline = Cpu.run ~config:Cpu.scalar_config (Image.of_program (Codegen.baseline program)) in
  Format.printf "%-24s %10s %10s@." "machine" "cycles" "speedup";
  let show name (run : Cpu.run) =
    Format.printf "%-24s %10d %9.2fx@." name run.Cpu.stats.Stats.cycles
      (float_of_int baseline.Cpu.stats.Stats.cycles
      /. float_of_int run.Cpu.stats.Stats.cycles)
  in
  show "scalar core (baseline)" baseline;
  show "scalar core (liquid)" (Cpu.run ~config:Cpu.scalar_config image);
  List.iter
    (fun lanes ->
      let run = Cpu.run ~config:(Cpu.liquid_config ~lanes) image in
      show (Printf.sprintf "%2d-lane SIMD + translator" lanes) run)
    [ 2; 4; 8; 16 ];

  (* 4. And they all compute the same thing. *)
  let y_of (run : Cpu.run) =
    let addr = Image.array_addr image "y" in
    Array.init 256 (fun i ->
        Memory.read run.Cpu.memory ~addr:(addr + (4 * i)) ~bytes:4 ~signed:true)
  in
  let reference = y_of baseline in
  List.iter
    (fun lanes ->
      let run = Cpu.run ~config:(Cpu.liquid_config ~lanes) image in
      assert (y_of run = reference))
    [ 2; 4; 8; 16 ];
  Format.printf "@.All machines computed identical results.@."
