(* Saturating arithmetic without saturating scalar instructions: the
   compare/predicated-move idiom of §3.2, recognized by the translator
   and collapsed back into a single vqadd. The workload is an 8-bit
   image blend (the MPEG2 motion-compensation shape).

   Run with: dune exec examples/saturation.exe *)

open Liquid_isa
open Liquid_prog
open Liquid_scalarize
open Liquid_pipeline
open Liquid_translate
module Kernels = Liquid_workloads.Kernels
module Memory = Liquid_machine.Memory

let count = 64

let blend =
  Kernels.blend_sat ~name:"blend" ~count ~esize:Esize.Byte ~signed:false
    ~a:"fg" ~b:"bg" ~out:"mix"

let data =
  [
    Kernels.barray "fg" count (fun i -> (i * 11) mod 256);
    Kernels.barray "bg" count (fun i -> 255 - ((i * 3) mod 200));
    Kernels.bzeros "mix" count;
  ]

let () =
  let out = Scalarize.scalarize blend in
  Format.printf "== Scalar representation: the saturation idiom ==@.";
  List.iter
    (function
      | Program.Label l -> Format.printf "%s:@." l
      | Program.I insn -> Format.printf "    %a@." Liquid_visa.Minsn.pp_asm insn)
    out.Scalarize.region_items;

  let program = { Vloop.name = "satp"; sections = [ Vloop.Loop blend ]; data } in
  let image = Image.of_program (Codegen.liquid program) in
  Format.printf "@.== Translated microcode: the idiom collapses to vqaddub ==@.";
  List.iter
    (fun (_, _, result) ->
      match result with
      | Translator.Translated u -> Format.printf "%a@." Ucode.pp u
      | Translator.Aborted reason -> Format.printf "aborted: %a@." Abort.pp reason)
    (Offline.translate_all ~image ~lanes:8 ());

  (* Verify against a plain OCaml reference. *)
  let run = Cpu.run ~config:(Cpu.liquid_config ~lanes:8) image in
  let mix_addr = Image.array_addr image "mix" in
  let mix =
    Array.init count (fun i ->
        Memory.read run.Cpu.memory ~addr:(mix_addr + i) ~bytes:1 ~signed:false)
  in
  let expected =
    Array.init count (fun i ->
        min 255 (((i * 11) mod 256) + (255 - ((i * 3) mod 200))))
  in
  assert (mix = expected);
  let saturated =
    Array.to_list expected |> List.filter (fun x -> x = 255) |> List.length
  in
  Format.printf
    "@.Blend verified against the reference: %d of %d pixels saturated at \
     255.@."
    saturated count
