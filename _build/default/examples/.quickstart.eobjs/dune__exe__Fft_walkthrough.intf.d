examples/fft_walkthrough.mli:
