examples/quickstart.mli:
