examples/width_migration.ml: Codegen Cpu Format Image Liquid_isa Liquid_machine Liquid_pipeline Liquid_prog Liquid_scalarize Liquid_workloads List Printf Sem Vloop
