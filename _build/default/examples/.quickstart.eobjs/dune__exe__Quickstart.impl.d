examples/quickstart.ml: Array Build Codegen Cond Data Esize Format Image Liquid_isa Liquid_machine Liquid_pipeline Liquid_prog Liquid_scalarize List Printf Vloop
