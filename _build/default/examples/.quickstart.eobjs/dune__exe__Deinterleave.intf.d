examples/deinterleave.mli:
