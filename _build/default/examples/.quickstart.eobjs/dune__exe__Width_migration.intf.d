examples/width_migration.mli:
