examples/saturation.mli:
