(* Extension walkthrough: interleaved memory accesses.

   The paper lists interleaved accesses (Neon's VLD2/VST2) as one of two
   instruction classes its scalar schema cannot express (§3.3). This
   library implements them as an extension: a scaled induction variable
   (lsl + optional phase add) feeding an element-indexed access, which
   the translator recognizes and maps onto strided vector memory
   instructions. The demo splits an interleaved I/Q stream, computes the
   power envelope, and re-interleaves conjugates.

   Run with: dune exec examples/deinterleave.exe *)

open Liquid_isa
open Liquid_prog
open Liquid_scalarize
open Liquid_pipeline
open Liquid_translate
module Kernels = Liquid_workloads.Kernels
module Memory = Liquid_machine.Memory

let count = 64

let power_loop =
  let open Build in
  {
    Vloop.name = "pw";
    count;
    body =
      [
        vld2 ~phase:0 (v 1) "iq";
        vld2 ~phase:1 (v 2) "iq";
        vmul (v 3) (v 1) (vr (v 1));
        vmul (v 4) (v 2) (vr (v 2));
        vadd (v 3) (v 3) (vr (v 4));
        vst (v 3) "power";
        (* conjugate back into an interleaved stream *)
        vst2 ~phase:0 (v 1) "conj";
        vmul (v 2) (v 2) (vi (-1));
        vst2 ~phase:1 (v 2) "conj";
      ];
    reductions = [];
  }

let program =
  {
    Vloop.name = "deinterleave";
    sections =
      Kernels.counted ~reg:(Reg.make 15) ~label:"frame" ~count:4
        [ Vloop.Loop power_loop ];
    data =
      [
        Kernels.warray "iq" (2 * count) (fun i ->
            if i mod 2 = 0 then (i / 2) - 30 else 15 - (i / 2));
        Kernels.wzeros "power" count;
        Kernels.wzeros "conj" (2 * count);
      ];
  }

let () =
  let out = Scalarize.scalarize power_loop in
  Format.printf "== Scalar schema: scaled induction variable ==@.";
  List.iter
    (function
      | Program.Label l -> Format.printf "%s:@." l
      | Program.I insn -> Format.printf "    %a@." Liquid_visa.Minsn.pp_asm insn)
    out.Scalarize.region_items;

  let image = Image.of_program (Codegen.liquid program) in
  Format.printf "@.== Recovered microcode (8-wide): vlds/vsts ==@.";
  List.iter
    (fun (_, _, result) ->
      match result with
      | Translator.Translated u -> Format.printf "%a@." Ucode.pp u
      | Translator.Aborted reason -> Format.printf "aborted: %a@." Abort.pp reason)
    (Offline.translate_all ~image ~lanes:8 ());

  let run = Cpu.run ~config:(Cpu.liquid_config ~lanes:8) image in
  let read name n =
    let addr = Image.array_addr image name in
    Array.init n (fun i ->
        Memory.read run.Cpu.memory ~addr:(addr + (4 * i)) ~bytes:4 ~signed:true)
  in
  let power = read "power" count and conj = read "conj" (2 * count) in
  let re k = k - 30 and im k = 15 - k in
  Array.iteri
    (fun k p -> assert (p = (re k * re k) + (im k * im k)))
    power;
  Array.iteri
    (fun i c -> assert (c = if i mod 2 = 0 then re (i / 2) else -im (i / 2)))
    conj;
  Format.printf
    "@.Power envelope and conjugate stream verified; %d vector instructions \
     executed.@."
    run.Cpu.stats.Liquid_machine.Stats.vector_insns
