(* The paper's running example (§3.4, Figures 2-4 and Table 4), end to
   end: the FFT butterfly loop in the vector IR, its scalar
   representation (including the loop fission around the mid-loop
   butterfly), and the SIMD microcode the dynamic translator recovers.

   Run with: dune exec examples/fft_walkthrough.exe *)

open Liquid_prog
open Liquid_scalarize
open Liquid_pipeline
open Liquid_translate
module Kernels = Liquid_workloads.Kernels
module Stats = Liquid_machine.Stats

let count = 128

let stage =
  Kernels.fft_stage ~name:"fft" ~count ~block:8 ~re:"RealOut" ~im:"ImagOut"
    ~wr:"ar" ~wi:"ai"

let data =
  [
    Kernels.warray "RealOut" count (fun i -> ((i * 7) mod 501) - 250);
    Kernels.warray "ImagOut" count (fun i -> ((i * 3) mod 401) - 200);
    Kernels.warray "ar" count (fun i -> i mod 9);
    Kernels.warray "ai" count (fun i -> 5 - (i mod 4));
  ]

let () =
  Format.printf "== The SIMD loop (Figure 4(A) analogue) ==@.%a@." Vloop.pp stage;

  (* Scalarization: note the two loops — the compiler fissioned at the
     mid-loop butterfly, exactly like Figure 4(B). *)
  let out = Scalarize.scalarize stage in
  Format.printf "== Scalar representation (Figure 4(B) analogue) ==@.";
  List.iter
    (function
      | Program.Label l -> Format.printf "%s:@." l
      | Program.I insn -> Format.printf "    %a@." Liquid_visa.Minsn.pp_asm insn)
    out.Scalarize.region_items;
  Format.printf "@.Outlined functions: %s@.@."
    (String.concat ", "
       (List.map
          (fun (l, n) -> Printf.sprintf "%s (%d instructions)" l n)
          out.Scalarize.static_sizes));

  (* Dynamic translation back to SIMD (Table 4 analogue). *)
  let program =
    (* A few frames so the translated microcode actually gets used. *)
    {
      Vloop.name = "fftw";
      sections =
        Kernels.counted ~reg:(Liquid_isa.Reg.make 15) ~label:"fr" ~count:4
          [ Vloop.Loop stage ];
      data;
    }
  in
  let image = Image.of_program (Codegen.liquid program) in
  Format.printf "== Recovered SIMD microcode (Table 4 analogue, 8-wide) ==@.";
  List.iter
    (fun (_, label, result) ->
      Format.printf "--- %s ---@." label;
      match result with
      | Translator.Translated u -> Format.printf "%a@." Ucode.pp u
      | Translator.Aborted reason -> Format.printf "aborted: %a@." Abort.pp reason)
    (Offline.translate_all ~image ~lanes:8 ());

  (* Prove the three forms agree. *)
  let baseline_prog = Codegen.baseline program in
  let base = Cpu.run ~config:Cpu.scalar_config (Image.of_program baseline_prog) in
  let simd = Cpu.run ~config:(Cpu.liquid_config ~lanes:8) image in
  let read (run : Cpu.run) img name =
    let addr = Image.array_addr img name in
    Array.init count (fun i ->
        Liquid_machine.Memory.read run.Cpu.memory ~addr:(addr + (4 * i)) ~bytes:4
          ~signed:true)
  in
  assert (
    read base (Image.of_program baseline_prog) "RealOut" = read simd image "RealOut");
  Format.printf
    "Baseline scalar and translated SIMD runs agree on RealOut; the SIMD \
     run executed %d vector instructions.@."
    simd.Cpu.stats.Stats.vector_insns
