(** Architectural semantics: the effect of one instruction on registers,
    flags and memory. Timing is layered on top by {!Cpu}; this module is
    purely functional behaviour plus the side effects on the shared
    context. *)

open Liquid_isa
open Liquid_visa

exception Sigill of string
(** Raised when an instruction cannot execute on this machine: a vector
    instruction without (or incompatible with) the configured SIMD
    accelerator — the binary-compatibility failure Liquid SIMD exists to
    avoid. *)

type ctx = {
  regs : int array;  (** 16 scalar registers *)
  mutable flags : Flags.t;
  vregs : int array array;  (** 16 vector registers x maximum lanes *)
  mutable lanes : int;  (** active vector width for vector instructions *)
  mem : Liquid_machine.Memory.t;
}

val create_ctx : Liquid_machine.Memory.t -> ctx

type outcome =
  | Next
  | Jump of int
  | Call of { target : int; region : bool }
  | Return
  | Stop

type access = { addr : int; bytes : int; write : bool }

type effect = {
  value : int option;  (** value written to the destination register *)
  accesses : access list;
  taken : bool option;  (** for conditional branches *)
}

val no_effect : effect

val step_scalar : ctx -> pc:int -> Insn.exec -> outcome * effect
(** Executes one scalar instruction. [Bl] writes the link register with
    [pc + 1]. [Ret] reports {!Return}; the caller reads the link
    register. *)

val step_vector : ctx -> Vinsn.exec -> effect
(** Executes one vector instruction at the context's active lane count.
    Raises {!Sigill} on a permutation unsupported at that width or a
    constant vector of mismatched length. *)
