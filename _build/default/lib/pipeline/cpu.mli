(** The simulated processor: an in-order five-stage core in the spirit of
    the ARM-926EJ-S used in the paper's evaluation, optionally extended
    with a parameterized SIMD accelerator, the post-retirement dynamic
    translator, and the microcode cache (Figure 1).

    Timing model (approximate, first-order):
    - one cycle per retired instruction;
    - extra latency for multiplies;
    - instruction and data cache misses stall for the memory latency;
    - a load immediately consumed by the next instruction stalls one
      cycle (load-use);
    - conditional branches consult a BTB + 2-bit-counter predictor; a
      mispredict costs a pipeline refill;
    - vector memory operations charge the data cache once per line
      spanned;
    - microcode executes out of the microcode cache and therefore skips
      instruction-cache accesses.

    Region calls (the unique branch-and-link) consult the microcode
    cache. On a ready hit, the front end substitutes the SIMD microcode
    for the outlined function. On a miss the region runs in scalar form
    while (at most one at a time, and only if the region is not already
    known untranslatable) a translator session consumes the retirement
    stream; the resulting microcode becomes visible [cycles_per_insn *
    observed_instructions] cycles after the region started, modeling
    translation latency (§5's sensitivity study). *)

open Liquid_machine
open Liquid_prog
open Liquid_translate

type translation_kind =
  | Hardware
      (** post-retirement hardware: translation proceeds in parallel with
          execution; only the microcode-ready time is delayed *)
  | Software
      (** a JIT routine on the main core: the same work additionally
          stalls the processor (the paper's §2 software alternative) *)

type translation = { cycles_per_insn : int; kind : translation_kind }

(** Observation points for debugging and tooling: every retired
    instruction (image stream and microcode), plus region-level events
    (scalar vs microcode calls, translation outcomes). *)
type trace_event =
  | T_insn of { pc : int; insn : Liquid_visa.Minsn.exec }
  | T_uop of { entry : int; index : int; uop : Ucode.uop }
  | T_region of {
      label : string;
      event :
        [ `Scalar_call | `Ucode_call | `Translated of int | `Aborted of Abort.t ];
    }

type config = {
  accel_lanes : int option;
  translator : translation option;
  icache : Cache.config option;
  dcache : Cache.config option;
  mem_latency : int;
  mul_extra : int;
  mispredict_penalty : int;
  vec_bus_bytes : int;
      (** memory-bus width: a vector load/store costs one cycle per bus
          beat beyond the first *)
  oracle_translation : bool;
      (** pre-translate every region before execution, modeling a binary
          with built-in ISA support for SIMD (the paper's overhead
          baseline in Figure 6's callout) *)
  interrupt_interval : int option;
      (** deliver an asynchronous interrupt (context switch) every N
          cycles; an in-flight translation session is externally aborted
          (paper §4.1) and retried on a later region execution *)
  on_trace : (trace_event -> unit) option;
      (** observer invoked at every retirement and region event *)
  ucode_entries : int;
  max_uops : int;
  fuel : int;  (** retired-instruction budget before {!Execution_error} *)
}

val scalar_config : config
(** Baseline ARM-926EJ-S: no SIMD accelerator, no translator. *)

val native_config : lanes:int -> config
(** Accelerator present, binaries carry native SIMD instructions. *)

val liquid_config : lanes:int -> config
(** Accelerator plus hardware translator (1 cycle/instruction). *)

type region_outcome =
  | R_untried
  | R_installed of { width : int; uops : int }
  | R_failed of Abort.t

type region_report = {
  label : string;
  entry : int;
  calls : (int * int) list;
      (** (start, end) cycles of each call, chronological; the gap the
          translator has between executions is
          [start of call k+1 - end of call k] *)
  ucode_served : int;  (** calls substituted from the microcode cache *)
  outcome : region_outcome;
}

type run = {
  stats : Stats.t;
  memory : Memory.t;
  regs : int array;
  regions : region_report list;
  ucode_max_occupancy : int;
}

exception Execution_error of string

val run : ?config:config -> Image.t -> run
(** Execute the image from its entry point until [halt].
    Raises {!Execution_error} on runaway execution or a wild PC, and
    {!Sem.Sigill} when the binary needs hardware this machine lacks. *)
