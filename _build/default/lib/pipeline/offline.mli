(** Standalone region translation: drive one outlined function through
    the architectural interpreter against the image's initial memory and
    feed its retirement stream to a fresh translator session.

    Used by the oracle-translation mode (the paper's "built-in ISA
    support" simulator configuration, §5), by the CLI's [translate]
    command, and by tests that want microcode without a full program
    run. The result depends only on the program's static data (offset,
    mask and constant arrays), so translating against initial memory is
    equivalent to translating during a real first execution. *)

open Liquid_prog
open Liquid_translate

val translate_region :
  ?max_uops:int -> image:Image.t -> lanes:int -> entry:int -> unit ->
  Translator.result
(** Raises [Invalid_argument] if the region never returns within a
    generous instruction budget or contains vector instructions. *)

val translate_all :
  ?max_uops:int -> image:Image.t -> lanes:int -> unit ->
  (int * string * Translator.result) list
(** Translate every region entry of the image. *)
