lib/pipeline/offline.ml: Array Event Image Liquid_machine Liquid_prog Liquid_translate Liquid_visa List Minsn Sem Translator
