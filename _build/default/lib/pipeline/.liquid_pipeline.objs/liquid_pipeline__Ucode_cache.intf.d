lib/pipeline/ucode_cache.mli: Liquid_translate Ucode
