lib/pipeline/cpu.mli: Abort Cache Image Liquid_machine Liquid_prog Liquid_translate Liquid_visa Memory Stats Ucode
