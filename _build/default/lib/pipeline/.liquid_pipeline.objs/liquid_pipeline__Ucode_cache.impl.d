lib/pipeline/ucode_cache.ml: Array Liquid_translate Ucode
