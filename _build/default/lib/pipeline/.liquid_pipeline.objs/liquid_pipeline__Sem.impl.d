lib/pipeline/sem.ml: Array Cond Esize Flags Format Insn Liquid_isa Liquid_machine Liquid_visa Opcode Perm Reg Vinsn Vreg Width Word
