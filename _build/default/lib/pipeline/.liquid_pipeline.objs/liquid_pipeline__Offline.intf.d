lib/pipeline/offline.mli: Image Liquid_prog Liquid_translate Translator
