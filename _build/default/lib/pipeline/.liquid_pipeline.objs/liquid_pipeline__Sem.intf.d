lib/pipeline/sem.mli: Flags Insn Liquid_isa Liquid_machine Liquid_visa Vinsn
