open Liquid_visa
open Liquid_prog
open Liquid_translate
module Memory = Liquid_machine.Memory

let step_budget = 5_000_000

let translate_region ?(max_uops = 64) ~image ~lanes ~entry () =
  let mem = Memory.create () in
  Image.load_memory image mem;
  let ctx = Sem.create_ctx mem in
  let tr = Translator.create { Translator.lanes; max_uops } in
  let pc = ref entry in
  let running = ref true in
  let steps = ref 0 in
  while !running do
    incr steps;
    if !steps > step_budget then
      invalid_arg "Offline.translate_region: region does not terminate";
    if !pc < 0 || !pc >= Array.length image.Image.code then
      invalid_arg "Offline.translate_region: wild pc";
    let insn =
      match image.Image.code.(!pc) with
      | Minsn.S i -> i
      | Minsn.V _ ->
          invalid_arg "Offline.translate_region: vector instruction in region"
    in
    let outcome, eff = Sem.step_scalar ctx ~pc:!pc insn in
    Translator.feed tr (Event.make ~pc:!pc ?value:eff.Sem.value insn);
    match outcome with
    | Sem.Next -> incr pc
    | Sem.Jump t -> pc := t
    | Sem.Return | Sem.Stop -> running := false
    | Sem.Call _ -> running := false
  done;
  Translator.finish tr

let translate_all ?max_uops ~image ~lanes () =
  List.map
    (fun (entry, label) ->
      (entry, label, translate_region ?max_uops ~image ~lanes ~entry ()))
    image.Image.region_entries
