open Liquid_isa
open Liquid_visa
module Memory = Liquid_machine.Memory

exception Sigill of string

type ctx = {
  regs : int array;
  mutable flags : Flags.t;
  vregs : int array array;
  mutable lanes : int;
  mem : Memory.t;
}

let max_lanes = Width.lanes Width.max

let create_ctx mem =
  {
    regs = Array.make Reg.count 0;
    flags = Flags.initial;
    vregs = Array.init Vreg.count (fun _ -> Array.make max_lanes 0);
    lanes = max_lanes;
    mem;
  }

type outcome =
  | Next
  | Jump of int
  | Call of { target : int; region : bool }
  | Return
  | Stop

type access = { addr : int; bytes : int; write : bool }

type effect = { value : int option; accesses : access list; taken : bool option }

let no_effect = { value = None; accesses = []; taken = None }

let operand_value ctx = function
  | Insn.Imm v -> v
  | Insn.Reg r -> ctx.regs.(Reg.index r)

let base_value = function
  | Insn.Sym addr -> fun _ctx -> addr
  | Insn.Breg r -> fun ctx -> ctx.regs.(Reg.index r)

let mem_addr ctx ~base ~index ~shift =
  Word.add (base_value base ctx) (Word.shl (operand_value ctx index) shift)

let step_scalar ctx ~pc insn =
  match insn with
  | Insn.Mov { cond; dst; src } ->
      if Cond.holds cond ctx.flags then begin
        let v = Word.of_int (operand_value ctx src) in
        ctx.regs.(Reg.index dst) <- v;
        (Next, { no_effect with value = Some v })
      end
      else (Next, no_effect)
  | Insn.Dp { cond; op; dst; src1; src2 } ->
      if Cond.holds cond ctx.flags then begin
        let v =
          Opcode.eval op ctx.regs.(Reg.index src1) (operand_value ctx src2)
        in
        ctx.regs.(Reg.index dst) <- v;
        (Next, { no_effect with value = Some v })
      end
      else (Next, no_effect)
  | Insn.Ld { esize; signed; dst; base; index; shift } ->
      let addr = mem_addr ctx ~base ~index ~shift in
      let bytes = Esize.bytes esize in
      let v = Memory.read ctx.mem ~addr ~bytes ~signed in
      ctx.regs.(Reg.index dst) <- v;
      ( Next,
        { value = Some v; accesses = [ { addr; bytes; write = false } ]; taken = None } )
  | Insn.St { esize; src; base; index; shift } ->
      let addr = mem_addr ctx ~base ~index ~shift in
      let bytes = Esize.bytes esize in
      Memory.write ctx.mem ~addr ~bytes ctx.regs.(Reg.index src);
      ( Next,
        { value = None; accesses = [ { addr; bytes; write = true } ]; taken = None } )
  | Insn.Cmp { src1; src2 } ->
      ctx.flags <-
        Flags.of_compare ctx.regs.(Reg.index src1) (operand_value ctx src2);
      (Next, no_effect)
  | Insn.B { cond; target } ->
      if Cond.holds cond ctx.flags then
        (Jump target, { no_effect with taken = Some true })
      else (Next, { no_effect with taken = Some false })
  | Insn.Bl { target; region } ->
      ctx.regs.(Reg.index Reg.lr) <- pc + 1;
      (Call { target; region }, { no_effect with value = Some (pc + 1) })
  | Insn.Ret -> (Return, no_effect)
  | Insn.Halt -> (Stop, no_effect)

let vsrc_lane ctx vsrc lane =
  match vsrc with
  | Vinsn.VR r -> ctx.vregs.(Vreg.index r).(lane)
  | Vinsn.VImm v -> v
  | Vinsn.VConst a ->
      if Array.length a <> ctx.lanes then
        raise (Sigill "constant vector width mismatch");
      a.(lane)

let step_vector ctx vinsn =
  let w = ctx.lanes in
  match vinsn with
  | Vinsn.Vld { esize; signed; dst; base; index } ->
      let bytes = Esize.bytes esize in
      let first = ctx.regs.(Reg.index index) in
      let start = Word.add (base_value base ctx) (Word.mul first bytes) in
      let d = ctx.vregs.(Vreg.index dst) in
      for i = 0 to w - 1 do
        d.(i) <- Memory.read ctx.mem ~addr:(start + (i * bytes)) ~bytes ~signed
      done;
      {
        value = None;
        accesses = [ { addr = start; bytes = w * bytes; write = false } ];
        taken = None;
      }
  | Vinsn.Vst { esize; src; base; index } ->
      let bytes = Esize.bytes esize in
      let first = ctx.regs.(Reg.index index) in
      let start = Word.add (base_value base ctx) (Word.mul first bytes) in
      let s = ctx.vregs.(Vreg.index src) in
      for i = 0 to w - 1 do
        Memory.write ctx.mem ~addr:(start + (i * bytes)) ~bytes s.(i)
      done;
      {
        value = None;
        accesses = [ { addr = start; bytes = w * bytes; write = true } ];
        taken = None;
      }
  | Vinsn.Vlds { esize; signed; dst; base; index; stride; phase } ->
      let bytes = Esize.bytes esize in
      let first = ctx.regs.(Reg.index index) in
      let base_addr = base_value base ctx in
      let d = ctx.vregs.(Vreg.index dst) in
      for i = 0 to w - 1 do
        let elem = (stride * (first + i)) + phase in
        d.(i) <- Memory.read ctx.mem ~addr:(base_addr + (elem * bytes)) ~bytes ~signed
      done;
      let start = base_addr + (((stride * first) + phase) * bytes) in
      {
        value = None;
        accesses =
          [ { addr = start; bytes = ((stride * (w - 1)) + 1) * bytes; write = false } ];
        taken = None;
      }
  | Vinsn.Vsts { esize; src; base; index; stride; phase } ->
      let bytes = Esize.bytes esize in
      let first = ctx.regs.(Reg.index index) in
      let base_addr = base_value base ctx in
      let s = ctx.vregs.(Vreg.index src) in
      for i = 0 to w - 1 do
        let elem = (stride * (first + i)) + phase in
        Memory.write ctx.mem ~addr:(base_addr + (elem * bytes)) ~bytes s.(i)
      done;
      let start = base_addr + (((stride * first) + phase) * bytes) in
      {
        value = None;
        accesses =
          [ { addr = start; bytes = ((stride * (w - 1)) + 1) * bytes; write = true } ];
        taken = None;
      }
  | Vinsn.Vgather { esize; signed; dst; base; index_v } ->
      let bytes = Esize.bytes esize in
      let base_addr = base_value base ctx in
      let idx = ctx.vregs.(Vreg.index index_v) in
      let d = ctx.vregs.(Vreg.index dst) in
      let tmp =
        Array.init w (fun i ->
            Memory.read ctx.mem ~addr:(base_addr + (idx.(i) * bytes)) ~bytes ~signed)
      in
      Array.blit tmp 0 d 0 w;
      (* Conservative access accounting: one element-sized touch per
         lane, summarized as a single span for the cache model. *)
      {
        value = None;
        accesses =
          Array.to_list
            (Array.init w (fun i ->
                 { addr = base_addr + (idx.(i) * bytes); bytes; write = false }));
        taken = None;
      }
  | Vinsn.Vdp { op; dst; src1; src2 } ->
      let a = ctx.vregs.(Vreg.index src1) in
      let d = ctx.vregs.(Vreg.index dst) in
      let tmp = Array.init w (fun i -> Opcode.eval op a.(i) (vsrc_lane ctx src2 i)) in
      Array.blit tmp 0 d 0 w;
      no_effect
  | Vinsn.Vsat { op; esize; signed; dst; src1; src2 } ->
      let a = ctx.vregs.(Vreg.index src1) in
      let b = ctx.vregs.(Vreg.index src2) in
      let d = ctx.vregs.(Vreg.index dst) in
      let f = match op with `Add -> Word.sat_add | `Sub -> Word.sat_sub in
      let tmp = Array.init w (fun i -> f esize ~signed a.(i) b.(i)) in
      Array.blit tmp 0 d 0 w;
      no_effect
  | Vinsn.Vperm { pattern; dst; src } ->
      if not (Perm.supported pattern ~lanes:w) then
        raise
          (Sigill
             (Format.asprintf "permutation %a unsupported at %d lanes" Perm.pp
                pattern w));
      let s = Array.sub ctx.vregs.(Vreg.index src) 0 w in
      let permuted = Perm.apply pattern s in
      Array.blit permuted 0 ctx.vregs.(Vreg.index dst) 0 w;
      no_effect
  | Vinsn.Vred { op; acc; src } ->
      let s = ctx.vregs.(Vreg.index src) in
      let folded = ref s.(0) in
      for i = 1 to w - 1 do
        folded := Opcode.eval op !folded s.(i)
      done;
      let v = Opcode.eval op ctx.regs.(Reg.index acc) !folded in
      ctx.regs.(Reg.index acc) <- v;
      { no_effect with value = Some v }
