lib/harness/runner.mli: Cpu Liquid_pipeline Liquid_prog Liquid_workloads Program Workload
