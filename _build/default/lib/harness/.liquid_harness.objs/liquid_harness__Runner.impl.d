lib/harness/runner.ml: Codegen Cpu Image Liquid_machine Liquid_pipeline Liquid_prog Liquid_scalarize Liquid_workloads Printf Program Workload
