lib/harness/experiments.mli: Cpu Format Liquid_hwmodel Liquid_pipeline Liquid_workloads Workload
