lib/harness/experiments.ml: Buffer Codegen Cpu Encode Float Format Image Liquid_hwmodel Liquid_machine Liquid_pipeline Liquid_prog Liquid_scalarize Liquid_workloads List Printf Runner Workload
