open Liquid_prog
open Liquid_pipeline
open Liquid_scalarize
open Liquid_workloads

type variant =
  | Baseline
  | Liquid_scalar
  | Liquid of int
  | Liquid_oracle of int
  | Native of int

type result = { variant : variant; program : Program.t; run : Cpu.run }

let variant_name = function
  | Baseline -> "baseline"
  | Liquid_scalar -> "liquid/scalar"
  | Liquid w -> Printf.sprintf "liquid/%d-wide" w
  | Liquid_oracle w -> Printf.sprintf "liquid-oracle/%d-wide" w
  | Native w -> Printf.sprintf "native/%d-wide" w

let program_of (w : Workload.t) = function
  | Baseline -> Codegen.baseline w.program
  | Liquid_scalar | Liquid _ | Liquid_oracle _ -> Codegen.liquid w.program
  | Native width -> Codegen.native ~width w.program

let config_of ?(translation_cpi = 1) = function
  | Baseline | Liquid_scalar -> Cpu.scalar_config
  | Liquid lanes ->
      {
        (Cpu.liquid_config ~lanes) with
        Cpu.translator =
          Some { Cpu.cycles_per_insn = translation_cpi; Cpu.kind = Cpu.Hardware };
      }
  | Liquid_oracle lanes ->
      { (Cpu.liquid_config ~lanes) with Cpu.oracle_translation = true }
  | Native lanes -> Cpu.native_config ~lanes

let run ?translation_cpi ?fuel (w : Workload.t) variant =
  let program = program_of w variant in
  let config = config_of ?translation_cpi variant in
  let config =
    match fuel with None -> config | Some fuel -> { config with Cpu.fuel }
  in
  { variant; program; run = Cpu.run ~config (Image.of_program program) }

let speedup ~(baseline : Cpu.run) (run : Cpu.run) =
  float_of_int baseline.Cpu.stats.Liquid_machine.Stats.cycles
  /. float_of_int run.Cpu.stats.Liquid_machine.Stats.cycles
