(** Running one benchmark under one machine/binary configuration. *)

open Liquid_prog
open Liquid_pipeline
open Liquid_workloads

type variant =
  | Baseline  (** scalar binary (inline loops) on the plain core *)
  | Liquid_scalar  (** Liquid binary on a core with no accelerator *)
  | Liquid of int  (** Liquid binary, accelerator + translator at width *)
  | Liquid_oracle of int
      (** Liquid binary with microcode available from the first call —
          the paper's "built-in ISA support" comparison point (§5) *)
  | Native of int  (** native SIMD binary on a matching accelerator *)

type result = { variant : variant; program : Program.t; run : Cpu.run }

val variant_name : variant -> string

val program_of : Workload.t -> variant -> Program.t
(** Raises {!Liquid_scalarize.Codegen.Unsupported_width} when a native
    binary cannot be generated at the requested width. *)

val run : ?translation_cpi:int -> ?fuel:int -> Workload.t -> variant -> result
val speedup : baseline:Cpu.run -> Cpu.run -> float
(** [baseline.cycles / run.cycles]. *)
