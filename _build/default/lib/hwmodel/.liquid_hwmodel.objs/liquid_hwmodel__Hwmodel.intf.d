lib/hwmodel/hwmodel.mli: Format
