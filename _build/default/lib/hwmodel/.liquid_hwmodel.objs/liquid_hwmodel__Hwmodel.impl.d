lib/hwmodel/hwmodel.ml: Format
