open Liquid_isa

type ('sym, 'lab) t = S of ('sym, 'lab) Insn.t | V of 'sym Vinsn.t

type asm = (string, string) t
type exec = (int, int) t

let map ~sym ~lab = function
  | S i -> S (Insn.map ~sym ~lab i)
  | V v -> V (Vinsn.map_sym sym v)

let equal_exec a b =
  match (a, b) with
  | S x, S y -> Insn.equal_exec x y
  | V x, V y -> Vinsn.equal_exec x y
  | S _, V _ | V _, S _ -> false

let is_vector = function V _ -> true | S _ -> false
let pp_asm ppf = function S i -> Insn.pp_asm ppf i | V v -> Vinsn.pp_asm ppf v

let pp_exec ppf = function
  | S i -> Insn.pp_exec ppf i
  | V v -> Vinsn.pp_exec ppf v
