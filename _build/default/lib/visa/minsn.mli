(** Mixed instructions: the union of scalar and vector instructions, as
    found in native SIMD binaries. A Liquid SIMD (virtualized) binary
    contains only [S] instructions. *)

open Liquid_isa

type ('sym, 'lab) t = S of ('sym, 'lab) Insn.t | V of 'sym Vinsn.t

type asm = (string, string) t
type exec = (int, int) t

val map : sym:('a -> 'c) -> lab:('b -> 'd) -> ('a, 'b) t -> ('c, 'd) t
val equal_exec : exec -> exec -> bool
val is_vector : ('a, 'b) t -> bool
val pp_asm : Format.formatter -> asm -> unit
val pp_exec : Format.formatter -> exec -> unit
