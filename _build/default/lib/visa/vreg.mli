(** Vector architectural registers v0..v15 of the SIMD accelerator. *)

type t

val count : int
val make : int -> t
val index : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val name : t -> string
val all : t list

val of_scalar : Liquid_isa.Reg.t -> t
(** The vector register shadowing a scalar register. The dynamic
    translator maps scalar register [ri] of the virtualized loop to
    vector register [vi], preserving the paper's one-to-one register
    state (section 4.1). *)
