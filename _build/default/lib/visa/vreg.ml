type t = int

let count = 16

let make i =
  if i < 0 || i >= count then
    invalid_arg (Printf.sprintf "Vreg.make: v%d out of range" i)
  else i

let index t = t
let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
let name t = Printf.sprintf "v%d" t
let pp ppf t = Format.pp_print_string ppf (name t)
let all = List.init count (fun i -> i)
let of_scalar r = Liquid_isa.Reg.index r
