type t = W2 | W4 | W8 | W16

let lanes = function W2 -> 2 | W4 -> 4 | W8 -> 8 | W16 -> 16

let of_lanes = function
  | 2 -> Some W2
  | 4 -> Some W4
  | 8 -> Some W8
  | 16 -> Some W16
  | _ -> None

let max = W16
let all = [ W2; W4; W8; W16 ]
let equal (a : t) b = a = b
let pp ppf t = Format.fprintf ppf "%d-wide" (lanes t)
