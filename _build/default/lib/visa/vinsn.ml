open Liquid_isa

type vsrc = VR of Vreg.t | VImm of int | VConst of int array

type 'sym t =
  | Vld of {
      esize : Esize.t;
      signed : bool;
      dst : Vreg.t;
      base : 'sym Insn.base;
      index : Reg.t;
    }
  | Vst of { esize : Esize.t; src : Vreg.t; base : 'sym Insn.base; index : Reg.t }
  | Vlds of {
      esize : Esize.t;
      signed : bool;
      dst : Vreg.t;
      base : 'sym Insn.base;
      index : Reg.t;
      stride : int;
      phase : int;
    }
  | Vsts of {
      esize : Esize.t;
      src : Vreg.t;
      base : 'sym Insn.base;
      index : Reg.t;
      stride : int;
      phase : int;
    }
  | Vgather of {
      esize : Esize.t;
      signed : bool;
      dst : Vreg.t;
      base : 'sym Insn.base;
      index_v : Vreg.t;
    }
  | Vdp of { op : Opcode.t; dst : Vreg.t; src1 : Vreg.t; src2 : vsrc }
  | Vsat of {
      op : [ `Add | `Sub ];
      esize : Esize.t;
      signed : bool;
      dst : Vreg.t;
      src1 : Vreg.t;
      src2 : Vreg.t;
    }
  | Vperm of { pattern : Perm.t; dst : Vreg.t; src : Vreg.t }
  | Vred of { op : Opcode.t; acc : Reg.t; src : Vreg.t }

type asm = string t
type exec = int t

let map_base f = function Insn.Sym s -> Insn.Sym (f s) | Insn.Breg r -> Insn.Breg r

let map_sym f = function
  | Vld l -> Vld { l with base = map_base f l.base }
  | Vst s -> Vst { s with base = map_base f s.base }
  | Vlds l -> Vlds { l with base = map_base f l.base }
  | Vsts s -> Vsts { s with base = map_base f s.base }
  | Vgather g -> Vgather { g with base = map_base f g.base }
  | Vdp d -> Vdp d
  | Vsat s -> Vsat s
  | Vperm p -> Vperm p
  | Vred r -> Vred r

let defs_vector = function
  | Vld { dst; _ } | Vlds { dst; _ } | Vgather { dst; _ } | Vdp { dst; _ }
  | Vsat { dst; _ } | Vperm { dst; _ } ->
      [ dst ]
  | Vst _ | Vsts _ | Vred _ -> []

let uses_vector = function
  | Vld _ | Vlds _ -> []
  | Vgather { index_v; _ } -> [ index_v ]
  | Vst { src; _ } | Vsts { src; _ } -> [ src ]
  | Vdp { src1; src2; _ } -> (
      src1 :: (match src2 with VR r -> [ r ] | VImm _ | VConst _ -> []))
  | Vsat { src1; src2; _ } -> [ src1; src2 ]
  | Vperm { src; _ } -> [ src ]
  | Vred { src; _ } -> [ src ]

let base_uses = function Insn.Sym _ -> [] | Insn.Breg r -> [ r ]

let defs_scalar = function
  | Vred { acc; _ } -> [ acc ]
  | Vld _ | Vst _ | Vlds _ | Vsts _ | Vgather _ | Vdp _ | Vsat _ | Vperm _ -> []

let uses_scalar = function
  | Vld { base; index; _ }
  | Vst { base; index; _ }
  | Vlds { base; index; _ }
  | Vsts { base; index; _ } ->
      index :: base_uses base
  | Vgather { base; _ } -> base_uses base
  | Vred { acc; _ } -> [ acc ]
  | Vdp _ | Vsat _ | Vperm _ -> []

let equal_vsrc a b =
  match (a, b) with
  | VR x, VR y -> Vreg.equal x y
  | VImm x, VImm y -> x = y
  | VConst x, VConst y -> x = y
  | (VR _ | VImm _ | VConst _), (VR _ | VImm _ | VConst _) -> false

let equal_base eq_sym a b =
  match (a, b) with
  | Insn.Sym x, Insn.Sym y -> eq_sym x y
  | Insn.Breg x, Insn.Breg y -> Reg.equal x y
  | Insn.Sym _, Insn.Breg _ | Insn.Breg _, Insn.Sym _ -> false

let equal eq_sym a b =
  match (a, b) with
  | Vld x, Vld y ->
      Esize.equal x.esize y.esize && x.signed = y.signed
      && Vreg.equal x.dst y.dst
      && equal_base eq_sym x.base y.base
      && Reg.equal x.index y.index
  | Vst x, Vst y ->
      Esize.equal x.esize y.esize && Vreg.equal x.src y.src
      && equal_base eq_sym x.base y.base
      && Reg.equal x.index y.index
  | Vlds x, Vlds y ->
      Esize.equal x.esize y.esize && x.signed = y.signed
      && Vreg.equal x.dst y.dst
      && equal_base eq_sym x.base y.base
      && Reg.equal x.index y.index
      && x.stride = y.stride && x.phase = y.phase
  | Vsts x, Vsts y ->
      Esize.equal x.esize y.esize && Vreg.equal x.src y.src
      && equal_base eq_sym x.base y.base
      && Reg.equal x.index y.index
      && x.stride = y.stride && x.phase = y.phase
  | Vgather x, Vgather y ->
      Esize.equal x.esize y.esize && x.signed = y.signed
      && Vreg.equal x.dst y.dst
      && equal_base eq_sym x.base y.base
      && Vreg.equal x.index_v y.index_v
  | Vdp x, Vdp y ->
      Opcode.equal x.op y.op && Vreg.equal x.dst y.dst
      && Vreg.equal x.src1 y.src1 && equal_vsrc x.src2 y.src2
  | Vsat x, Vsat y ->
      x.op = y.op && Esize.equal x.esize y.esize && x.signed = y.signed
      && Vreg.equal x.dst y.dst && Vreg.equal x.src1 y.src1
      && Vreg.equal x.src2 y.src2
  | Vperm x, Vperm y ->
      Perm.equal x.pattern y.pattern && Vreg.equal x.dst y.dst
      && Vreg.equal x.src y.src
  | Vred x, Vred y ->
      Opcode.equal x.op y.op && Reg.equal x.acc y.acc && Vreg.equal x.src y.src
  | ( ( Vld _ | Vst _ | Vlds _ | Vsts _ | Vgather _ | Vdp _ | Vsat _ | Vperm _
      | Vred _ ),
      ( Vld _ | Vst _ | Vlds _ | Vsts _ | Vgather _ | Vdp _ | Vsat _ | Vperm _
      | Vred _ ) ) ->
      false

let equal_exec a b = equal Int.equal a b

let pp_base pp_sym ppf = function
  | Insn.Sym s -> pp_sym ppf s
  | Insn.Breg r -> Reg.pp ppf r

let pp_vsrc ppf = function
  | VR r -> Vreg.pp ppf r
  | VImm i -> Format.fprintf ppf "#%d" i
  | VConst a ->
      Format.fprintf ppf "#[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
           Format.pp_print_int)
        (Array.to_list a)

let pp ~pp_sym ppf = function
  | Vld { esize; signed; dst; base; index } ->
      Format.fprintf ppf "vld%s%s %a, [%a + %a]" (Esize.suffix esize)
        (if signed && esize <> Esize.Word then "s" else "")
        Vreg.pp dst (pp_base pp_sym) base Reg.pp index
  | Vst { esize; src; base; index } ->
      Format.fprintf ppf "vst%s [%a + %a], %a" (Esize.suffix esize)
        (pp_base pp_sym) base Reg.pp index Vreg.pp src
  | Vlds { esize; signed; dst; base; index; stride; phase } ->
      Format.fprintf ppf "vlds%s%s.%d.%d %a, [%a + %a]" (Esize.suffix esize)
        (if signed && esize <> Esize.Word then "s" else "")
        stride phase Vreg.pp dst (pp_base pp_sym) base Reg.pp index
  | Vsts { esize; src; base; index; stride; phase } ->
      Format.fprintf ppf "vsts%s.%d.%d [%a + %a], %a" (Esize.suffix esize)
        stride phase (pp_base pp_sym) base Reg.pp index Vreg.pp src
  | Vgather { esize; signed; dst; base; index_v } ->
      Format.fprintf ppf "vtbl%s%s %a, [%a + %a]" (Esize.suffix esize)
        (if signed && esize <> Esize.Word then "s" else "")
        Vreg.pp dst (pp_base pp_sym) base Vreg.pp index_v
  | Vdp { op; dst; src1; src2 } ->
      Format.fprintf ppf "v%s %a, %a, %a" (Opcode.mnemonic op) Vreg.pp dst
        Vreg.pp src1 pp_vsrc src2
  | Vsat { op; esize; signed; dst; src1; src2 } ->
      Format.fprintf ppf "vq%s%s%s %a, %a, %a"
        (match op with `Add -> "add" | `Sub -> "sub")
        (if signed then "s" else "u")
        (Esize.suffix esize) Vreg.pp dst Vreg.pp src1 Vreg.pp src2
  | Vperm { pattern; dst; src } ->
      Format.fprintf ppf "vperm.%a %a, %a" Perm.pp pattern Vreg.pp dst Vreg.pp
        src
  | Vred { op; acc; src } ->
      Format.fprintf ppf "vred.%s %a, %a" (Opcode.mnemonic op) Reg.pp acc
        Vreg.pp src

let pp_string ppf s = Format.pp_print_string ppf s
let pp_addr ppf a = Format.fprintf ppf "0x%x" a
let pp_asm ppf i = pp ~pp_sym:pp_string ppf i
let pp_exec ppf i = pp ~pp_sym:pp_addr ppf i
