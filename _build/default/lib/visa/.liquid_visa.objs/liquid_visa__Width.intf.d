lib/visa/width.mli: Format
