lib/visa/vreg.ml: Format Liquid_isa List Printf Stdlib
