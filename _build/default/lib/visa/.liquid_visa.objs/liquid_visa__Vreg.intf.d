lib/visa/vreg.mli: Format Liquid_isa
