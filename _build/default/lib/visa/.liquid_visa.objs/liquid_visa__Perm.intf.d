lib/visa/perm.mli: Format
