lib/visa/perm.ml: Array Format List
