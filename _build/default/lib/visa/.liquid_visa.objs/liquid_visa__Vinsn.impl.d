lib/visa/vinsn.ml: Array Esize Format Insn Int Liquid_isa Opcode Perm Reg Vreg
