lib/visa/width.ml: Format
