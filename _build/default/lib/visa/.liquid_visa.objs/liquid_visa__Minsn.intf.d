lib/visa/minsn.mli: Format Insn Liquid_isa Vinsn
