lib/visa/vinsn.mli: Esize Format Insn Liquid_isa Opcode Perm Reg Vreg
