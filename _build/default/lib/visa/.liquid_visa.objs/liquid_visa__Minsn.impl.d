lib/visa/minsn.ml: Insn Liquid_isa Vinsn
