type t = Al | Eq | Ne | Gt | Ge | Lt | Le

let holds t (f : Flags.t) =
  match t with
  | Al -> true
  | Eq -> f.eq
  | Ne -> not f.eq
  | Gt -> (not f.lt) && not f.eq
  | Ge -> not f.lt
  | Lt -> f.lt
  | Le -> f.lt || f.eq

let all = [ Al; Eq; Ne; Gt; Ge; Lt; Le ]
let equal (a : t) b = a = b

let suffix = function
  | Al -> ""
  | Eq -> "eq"
  | Ne -> "ne"
  | Gt -> "gt"
  | Ge -> "ge"
  | Lt -> "lt"
  | Le -> "le"

let pp ppf t = Format.pp_print_string ppf (match t with Al -> "al" | _ -> suffix t)

let to_int = function
  | Al -> 0
  | Eq -> 1
  | Ne -> 2
  | Gt -> 3
  | Ge -> 4
  | Lt -> 5
  | Le -> 6

let of_int = function
  | 0 -> Some Al
  | 1 -> Some Eq
  | 2 -> Some Ne
  | 3 -> Some Gt
  | 4 -> Some Ge
  | 5 -> Some Lt
  | 6 -> Some Le
  | _ -> None
