type t = Byte | Half | Word

let bytes = function Byte -> 1 | Half -> 2 | Word -> 4
let shift = function Byte -> 0 | Half -> 1 | Word -> 2
let bits t = 8 * bytes t
let min_signed t = -(1 lsl (bits t - 1))
let max_signed t = (1 lsl (bits t - 1)) - 1
let max_unsigned t = (1 lsl bits t) - 1

let truncate t v =
  let b = bits t in
  let sh = Sys.int_size - b in
  (v lsl sh) asr sh

let truncate_unsigned t v = v land max_unsigned t
let of_shift = function 0 -> Some Byte | 1 -> Some Half | 2 -> Some Word | _ -> None
let all = [ Byte; Half; Word ]
let equal (a : t) b = a = b
let suffix = function Byte -> "b" | Half -> "h" | Word -> ""

let pp ppf t =
  Format.pp_print_string ppf
    (match t with Byte -> "byte" | Half -> "half" | Word -> "word")
