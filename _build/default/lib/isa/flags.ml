type t = { lt : bool; eq : bool }

let initial = { lt = false; eq = false }
let of_compare a b = { lt = a < b; eq = a = b }
let equal (a : t) b = a = b

let pp ppf t =
  Format.fprintf ppf "{lt=%b; eq=%b}" t.lt t.eq
