(** Processor condition flags, set by compare instructions.

    We keep the signed comparison outcome directly rather than N/Z/C/V
    bits; the modeled ISA only exposes signed conditions. *)

type t = { lt : bool; eq : bool }

val initial : t
val of_compare : int -> int -> t
(** [of_compare a b] captures the signed relation of [a] to [b]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
