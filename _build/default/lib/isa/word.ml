type t = int

let of_int v =
  let sh = Sys.int_size - 32 in
  (v lsl sh) asr sh

let to_unsigned v = v land 0xFFFFFFFF
let add a b = of_int (a + b)
let sub a b = of_int (a - b)
let rsb a b = of_int (b - a)
let mul a b = of_int (a * b)
let logand a b = of_int (a land b)
let logor a b = of_int (a lor b)
let logxor a b = of_int (a lxor b)
let bic a b = of_int (a land lnot b)
let shl a n = of_int (a lsl (n land 31))
let shr a n = of_int (to_unsigned a lsr (n land 31))
let sar a n = of_int (a asr (n land 31))
let smin a b = if a <= b then a else b
let smax a b = if a >= b then a else b

let clamp esize ~signed v =
  if signed then
    let lo = Esize.min_signed esize and hi = Esize.max_signed esize in
    if v < lo then lo else if v > hi then hi else v
  else
    let hi = Esize.max_unsigned esize in
    if v < 0 then 0 else if v > hi then hi else v

let sat_add esize ~signed a b = clamp esize ~signed (a + b)
let sat_sub esize ~signed a b = clamp esize ~signed (a - b)
let equal (a : t) b = a = b
let pp ppf v = Format.fprintf ppf "%d" v
