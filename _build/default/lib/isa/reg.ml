type t = int

let count = 16

let make i =
  if i < 0 || i >= count then
    invalid_arg (Printf.sprintf "Reg.make: r%d out of range" i)
  else i

let index t = t
let lr = 14
let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
let name t = Printf.sprintf "r%d" t
let pp ppf t = Format.pp_print_string ppf (name t)
let all = List.init count (fun i -> i)
