(** Scalar architectural registers r0..r15.

    Register conventions used by generated code:
    - r0 is the induction variable inside outlined loops (by convention of
      the code generator, not the ISA);
    - r14 is the link register written by branch-and-link;
    - the remaining registers are general purpose. *)

type t

val count : int
(** 16, as in the ARM architecture the paper targets. *)

val make : int -> t
(** [make i] is register [ri]. Raises [Invalid_argument] outside 0..15. *)

val index : t -> int
val lr : t
(** The link register, r14. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val name : t -> string
val all : t list
