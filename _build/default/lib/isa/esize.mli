(** Element sizes for memory accesses and vector lanes. *)

type t = Byte | Half | Word

val bytes : t -> int
(** 1, 2 or 4. *)

val shift : t -> int
(** log2 of {!bytes}: the scaling shift used in indexed addressing. *)

val bits : t -> int

val min_signed : t -> int
val max_signed : t -> int
val max_unsigned : t -> int

val truncate : t -> int -> int
(** Keep the low [bits t] bits, sign-extended (two's complement wrap). *)

val truncate_unsigned : t -> int -> int
(** Keep the low [bits t] bits, zero-extended. *)

val of_shift : int -> t option
(** Inverse of {!shift}. *)

val all : t list
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val suffix : t -> string
(** Assembly mnemonic suffix: ["b"], ["h"], [""]. *)
