lib/isa/cond.mli: Flags Format
