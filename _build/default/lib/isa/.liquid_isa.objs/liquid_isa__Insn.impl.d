lib/isa/insn.ml: Cond Esize Format Int Opcode Reg
