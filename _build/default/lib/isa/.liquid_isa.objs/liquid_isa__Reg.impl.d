lib/isa/reg.ml: Format List Printf Stdlib
