lib/isa/insn.mli: Cond Esize Format Opcode Reg
