lib/isa/flags.ml: Format
