lib/isa/cond.ml: Flags Format
