lib/isa/word.mli: Esize Format
