lib/isa/esize.mli: Format
