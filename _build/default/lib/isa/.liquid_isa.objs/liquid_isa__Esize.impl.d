lib/isa/esize.ml: Format Sys
