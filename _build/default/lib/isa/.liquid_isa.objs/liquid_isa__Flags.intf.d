lib/isa/flags.mli: Format
