lib/isa/opcode.ml: Format Word
