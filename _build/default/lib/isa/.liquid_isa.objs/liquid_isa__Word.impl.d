lib/isa/word.ml: Esize Format Sys
