(** Minimal growable array (OCaml 5.1 predates [Dynarray]). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val exists : ('a -> bool) -> 'a t -> bool
