lib/translate/abort.mli: Format
