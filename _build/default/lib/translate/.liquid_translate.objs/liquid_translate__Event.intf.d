lib/translate/event.mli: Format Insn Liquid_isa
