lib/translate/ucode.mli: Cond Format Insn Liquid_isa Liquid_visa Vinsn
