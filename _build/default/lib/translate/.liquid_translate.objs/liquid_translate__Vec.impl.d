lib/translate/vec.ml: Array
