lib/translate/translator.ml: Abort Array Cond Esize Event Hashtbl Insn Liquid_isa Liquid_visa List Opcode Option Perm Reg Ucode Vec Vinsn Vreg
