lib/translate/event.ml: Format Insn Liquid_isa
