lib/translate/ucode.ml: Array Cond Format Insn Liquid_isa Liquid_visa Vinsn
