lib/translate/abort.ml: Format
