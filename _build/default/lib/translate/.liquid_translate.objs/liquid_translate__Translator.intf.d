lib/translate/translator.mli: Abort Event Ucode
