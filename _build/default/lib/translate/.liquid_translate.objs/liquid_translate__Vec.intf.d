lib/translate/vec.mli:
