type 'a t = { mutable arr : 'a array; mutable len : int }

let create () = { arr = [||]; len = 0 }
let length t = t.len

let push t x =
  if t.len = Array.length t.arr then begin
    let cap = max 8 (2 * Array.length t.arr) in
    let arr = Array.make cap x in
    Array.blit t.arr 0 arr 0 t.len;
    t.arr <- arr
  end;
  t.arr.(t.len) <- x;
  t.len <- t.len + 1

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Vec: index out of bounds"

let get t i =
  check t i;
  t.arr.(i)

let set t i x =
  check t i;
  t.arr.(i) <- x

let to_array t = Array.sub t.arr 0 t.len
let to_list t = Array.to_list (to_array t)

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.arr.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.arr.(i)
  done;
  !acc

let exists p t =
  let rec go i = i < t.len && (p t.arr.(i) || go (i + 1)) in
  go 0
