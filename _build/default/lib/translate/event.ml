open Liquid_isa

type t = { pc : int; insn : Insn.exec; value : int option }

let make ~pc ?value insn = { pc; insn; value }

let pp ppf t =
  Format.fprintf ppf "@%d %a%a" t.pc Insn.pp_exec t.insn
    (fun ppf -> function
      | None -> ()
      | Some v -> Format.fprintf ppf "  ; => %d" v)
    t.value
