(** Translated microcode: the SIMD realization of an outlined region.

    A microcode sequence mixes vector instructions with the scalar glue
    the paper's Table 3 passes through unmodified (induction-variable
    setup and update, the loop compare and branch, reduction-accumulator
    initialization). Branches inside microcode target microcode indices;
    [URet] returns to the region's caller. *)

open Liquid_isa
open Liquid_visa

type uop =
  | US of Insn.exec  (** pass-through scalar instruction (never a branch) *)
  | UV of Vinsn.exec
  | UB of { cond : Cond.t; target : int }  (** intra-microcode branch *)
  | URet

type t = {
  uops : uop array;
  width : int;
      (** effective lane count the sequence was translated for; at most
          the accelerator width, and always dividing the loop's trip
          count *)
  source_insns : int;  (** static scalar instructions of the region *)
  observed_insns : int;  (** dynamic instructions the translator consumed *)
}

val length : t -> int
val pp_uop : Format.formatter -> uop -> unit
val pp : Format.formatter -> t -> unit
