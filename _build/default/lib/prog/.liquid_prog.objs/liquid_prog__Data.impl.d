lib/prog/data.ml: Array Esize Format Liquid_isa Liquid_visa
