lib/prog/disasm.ml: Array Buffer Encode Format Image Insn Liquid_isa Liquid_visa List Minsn Printf Vinsn
