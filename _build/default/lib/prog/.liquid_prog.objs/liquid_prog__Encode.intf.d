lib/prog/encode.mli: Image Liquid_visa Minsn
