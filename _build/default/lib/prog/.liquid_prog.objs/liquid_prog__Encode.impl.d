lib/prog/encode.ml: Array Cond Esize Format Hashtbl Image Insn Liquid_isa Liquid_visa List Minsn Opcode Perm Reg Sys Vinsn Vreg
