lib/prog/image.ml: Array Data Esize Format Insn Liquid_isa Liquid_machine Liquid_visa List Minsn Option Program
