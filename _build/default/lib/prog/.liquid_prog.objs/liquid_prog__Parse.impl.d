lib/prog/parse.ml: Array Buffer Cond Data Esize Format Insn Liquid_isa Liquid_visa List Minsn Opcode Perm Printf Program Reg String Vinsn Vreg
