lib/prog/disasm.mli: Encode Image
