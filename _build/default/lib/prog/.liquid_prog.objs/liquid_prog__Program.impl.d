lib/prog/program.ml: Data Format Insn Liquid_isa Liquid_visa List Minsn Printf
