lib/prog/data.mli: Esize Format Liquid_isa
