lib/prog/parse.mli: Program
