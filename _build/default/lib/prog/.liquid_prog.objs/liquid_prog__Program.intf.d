lib/prog/program.mli: Data Format Liquid_visa Minsn
