lib/prog/image.mli: Data Format Liquid_machine Liquid_visa Minsn Program
