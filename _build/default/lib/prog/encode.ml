open Liquid_isa
open Liquid_visa

exception Encode_error of string

type encoded = { words : int array; pool : int array }

let fail fmt = Format.kasprintf (fun s -> raise (Encode_error s)) fmt

(* --- bit packing helpers --- *)

let put word v ~at ~width =
  if v < 0 || v >= 1 lsl width then fail "field overflow: %d in %d bits" v width;
  word lor (v lsl at)

let put_signed word v ~at ~width =
  let lo = -(1 lsl (width - 1)) and hi = (1 lsl (width - 1)) - 1 in
  if v < lo || v > hi then fail "signed field overflow: %d in %d bits" v width;
  word lor ((v land ((1 lsl width) - 1)) lsl at)

let get word ~at ~width = (word lsr at) land ((1 lsl width) - 1)

let get_signed word ~at ~width =
  let raw = get word ~at ~width in
  let sh = Sys.int_size - width in
  (raw lsl sh) asr sh

(* --- literal pool --- *)

type pool_builder = {
  mutable items : int list;  (** reversed *)
  mutable len : int;
  scalar_index : (int, int) Hashtbl.t;
  vector_index : (int list, int) Hashtbl.t;
}

let pool_create () =
  {
    items = [];
    len = 0;
    scalar_index = Hashtbl.create 32;
    vector_index = Hashtbl.create 8;
  }

let pool_scalar pb v =
  match Hashtbl.find_opt pb.scalar_index v with
  | Some i -> i
  | None ->
      let i = pb.len in
      pb.items <- v :: pb.items;
      pb.len <- pb.len + 1;
      Hashtbl.replace pb.scalar_index v i;
      i

let pool_vector pb vs =
  let key = Array.to_list vs in
  match Hashtbl.find_opt pb.vector_index key with
  | Some i -> i
  | None ->
      let i = pb.len in
      pb.items <- Array.length vs :: pb.items;
      Array.iter (fun v -> pb.items <- v :: pb.items) vs;
      pb.len <- pb.len + 1 + Array.length vs;
      Hashtbl.replace pb.vector_index key i;
      i

let pool_finish pb = Array.of_list (List.rev pb.items)

(* --- field encodings shared between formats --- *)

let fits_signed v width =
  v >= -(1 lsl (width - 1)) && v <= (1 lsl (width - 1)) - 1

(* An "immf" field of [width] bits at [at]: top bit selects inline
   (0, signed [width-1] bits) or pool reference (1, unsigned index). *)
let put_immf word pb v ~at ~width =
  if fits_signed v (width - 1) then put_signed word v ~at ~width:(width - 1)
  else
    let idx = pool_scalar pb v in
    if idx >= 1 lsl (width - 1) then fail "literal pool overflow (%d)" idx;
    put (put word 1 ~at:(at + width - 1) ~width:1) idx ~at ~width:(width - 1)

let get_immf word pool ~at ~width =
  if get word ~at:(at + width - 1) ~width:1 = 0 then
    get_signed word ~at ~width:(width - 1)
  else
    let idx = get word ~at ~width:(width - 1) in
    if idx >= Array.length pool then fail "pool index out of range";
    pool.(idx)

let esize_code = function Esize.Byte -> 0 | Esize.Half -> 1 | Esize.Word -> 2

let esize_of_code = function
  | 0 -> Esize.Byte
  | 1 -> Esize.Half
  | 2 -> Esize.Word
  | c -> fail "bad esize code %d" c

(* --- per-instruction encoding --- *)

let major = function
  | Minsn.S (Insn.Mov _) -> 0
  | S (Dp _) -> 1
  | S (Ld _) -> 2
  | S (St _) -> 3
  | S (Cmp _) -> 4
  | S (B _) -> 5
  | S (Bl _) -> 6
  | S Ret -> 7
  | S Halt -> 8
  | V (Vld _) -> 16
  | V (Vst _) -> 17
  | V (Vdp _) -> 18
  | V (Vsat _) -> 19
  | V (Vperm _) -> 20
  | V (Vred _) -> 21
  | V (Vlds _) -> 22
  | V (Vsts _) -> 23
  | V (Vgather _) -> 24

let encode_mem_fields word pb ~base ~index ~shift =
  let word =
    match base with
    | Insn.Breg r ->
        put (put word 1 ~at:19 ~width:1) (Reg.index r) ~at:11 ~width:8
    | Insn.Sym addr ->
        let idx = pool_scalar pb addr in
        if idx >= 256 then fail "too many data symbols for 8-bit pool field";
        put word idx ~at:11 ~width:8
  in
  let word =
    match index with
    | Insn.Reg r ->
        put (put word 1 ~at:10 ~width:1) (Reg.index r) ~at:2 ~width:8
    | Insn.Imm v -> put_immf word pb v ~at:2 ~width:8
  in
  put word shift ~at:0 ~width:2

let encode_one pb (mi : Minsn.exec) =
  let w = put 0 (major mi) ~at:27 ~width:5 in
  match mi with
  | S (Mov { cond; dst; src }) -> (
      let w = put w (Cond.to_int cond) ~at:24 ~width:3 in
      let w = put w (Reg.index dst) ~at:20 ~width:4 in
      match src with
      | Reg r -> put (put w 1 ~at:19 ~width:1) (Reg.index r) ~at:15 ~width:4
      | Imm v -> put_immf w pb v ~at:0 ~width:15)
  | S (Dp { cond; op; dst; src1; src2 }) -> (
      let w = put w (Cond.to_int cond) ~at:24 ~width:3 in
      let w = put w (Opcode.to_int op) ~at:20 ~width:4 in
      let w = put w (Reg.index dst) ~at:16 ~width:4 in
      let w = put w (Reg.index src1) ~at:12 ~width:4 in
      match src2 with
      | Reg r -> put (put w 1 ~at:11 ~width:1) (Reg.index r) ~at:7 ~width:4
      | Imm v -> put_immf w pb v ~at:0 ~width:11)
  | S (Ld { esize; signed; dst; base; index; shift }) ->
      let w = put w (esize_code esize) ~at:25 ~width:2 in
      let w = put w (if signed then 1 else 0) ~at:24 ~width:1 in
      let w = put w (Reg.index dst) ~at:20 ~width:4 in
      encode_mem_fields w pb ~base ~index ~shift
  | S (St { esize; src; base; index; shift }) ->
      let w = put w (esize_code esize) ~at:25 ~width:2 in
      let w = put w (Reg.index src) ~at:20 ~width:4 in
      encode_mem_fields w pb ~base ~index ~shift
  | S (Cmp { src1; src2 }) -> (
      let w = put w (Reg.index src1) ~at:20 ~width:4 in
      match src2 with
      | Reg r -> put (put w 1 ~at:19 ~width:1) (Reg.index r) ~at:15 ~width:4
      | Imm v -> put_immf w pb v ~at:0 ~width:15)
  | S (B { cond; target }) ->
      let w = put w (Cond.to_int cond) ~at:24 ~width:3 in
      if target < 0 || target >= 1 lsl 24 then fail "branch target out of range";
      put w target ~at:0 ~width:24
  | S (Bl { target; region }) ->
      let w = put w (if region then 1 else 0) ~at:26 ~width:1 in
      if target < 0 || target >= 1 lsl 24 then fail "branch target out of range";
      put w target ~at:0 ~width:24
  | S Ret | S Halt -> w
  | V (Vld { esize; signed; dst; base; index }) ->
      let w = put w (esize_code esize) ~at:25 ~width:2 in
      let w = put w (if signed then 1 else 0) ~at:24 ~width:1 in
      let w = put w (Vreg.index dst) ~at:20 ~width:4 in
      let w =
        match base with
        | Insn.Breg r ->
            put (put w 1 ~at:19 ~width:1) (Reg.index r) ~at:11 ~width:8
        | Insn.Sym addr ->
            let idx = pool_scalar pb addr in
            if idx >= 256 then fail "too many data symbols";
            put w idx ~at:11 ~width:8
      in
      put w (Reg.index index) ~at:7 ~width:4
  | V (Vst { esize; src; base; index }) ->
      let w = put w (esize_code esize) ~at:25 ~width:2 in
      let w = put w (Vreg.index src) ~at:20 ~width:4 in
      let w =
        match base with
        | Insn.Breg r ->
            put (put w 1 ~at:19 ~width:1) (Reg.index r) ~at:11 ~width:8
        | Insn.Sym addr ->
            let idx = pool_scalar pb addr in
            if idx >= 256 then fail "too many data symbols";
            put w idx ~at:11 ~width:8
      in
      put w (Reg.index index) ~at:7 ~width:4
  | V (Vdp { op; dst; src1; src2 }) -> (
      let w = put w (Opcode.to_int op) ~at:23 ~width:4 in
      let w = put w (Vreg.index dst) ~at:19 ~width:4 in
      let w = put w (Vreg.index src1) ~at:15 ~width:4 in
      match src2 with
      | VR r -> put (put w 0 ~at:13 ~width:2) (Vreg.index r) ~at:9 ~width:4
      | VImm v -> put_immf (put w 1 ~at:13 ~width:2) pb v ~at:0 ~width:13
      | VConst vs ->
          let idx = pool_vector pb vs in
          if idx >= 1 lsl 13 then fail "literal pool overflow";
          put (put w 2 ~at:13 ~width:2) idx ~at:0 ~width:13)
  | V (Vsat { op; esize; signed; dst; src1; src2 }) ->
      let w = put w (match op with `Add -> 0 | `Sub -> 1) ~at:26 ~width:1 in
      let w = put w (esize_code esize) ~at:24 ~width:2 in
      let w = put w (if signed then 1 else 0) ~at:23 ~width:1 in
      let w = put w (Vreg.index dst) ~at:19 ~width:4 in
      let w = put w (Vreg.index src1) ~at:15 ~width:4 in
      put w (Vreg.index src2) ~at:11 ~width:4
  | V (Vperm { pattern; dst; src }) ->
      let kind, block, by =
        match pattern with
        | Perm.Reverse b -> (0, b, 0)
        | Perm.Halfswap b -> (1, b, 0)
        | Perm.Rotate { block; by } -> (2, block, by)
      in
      let w = put w kind ~at:25 ~width:2 in
      let w = put w block ~at:20 ~width:5 in
      let w = put w by ~at:15 ~width:5 in
      let w = put w (Vreg.index dst) ~at:11 ~width:4 in
      put w (Vreg.index src) ~at:7 ~width:4
  | V (Vred { op; acc; src }) ->
      let w = put w (Opcode.to_int op) ~at:23 ~width:4 in
      let w = put w (Reg.index acc) ~at:19 ~width:4 in
      put w (Vreg.index src) ~at:15 ~width:4
  | V (Vlds { esize; signed; dst; base; index; stride; phase }) ->
      let w = put w (esize_code esize) ~at:25 ~width:2 in
      let w = put w (if signed then 1 else 0) ~at:24 ~width:1 in
      let w = put w (Vreg.index dst) ~at:20 ~width:4 in
      let w =
        match base with
        | Insn.Breg r ->
            put (put w 1 ~at:19 ~width:1) (Reg.index r) ~at:11 ~width:8
        | Insn.Sym addr ->
            let idx = pool_scalar pb addr in
            if idx >= 256 then fail "too many data symbols";
            put w idx ~at:11 ~width:8
      in
      let w = put w (Reg.index index) ~at:7 ~width:4 in
      if stride <> 2 && stride <> 4 then fail "bad stride %d" stride;
      if phase < 0 || phase >= stride then fail "bad phase %d" phase;
      let w = put w (if stride = 2 then 0 else 1) ~at:6 ~width:1 in
      put w phase ~at:4 ~width:2
  | V (Vsts { esize; src; base; index; stride; phase }) ->
      let w = put w (esize_code esize) ~at:25 ~width:2 in
      let w = put w (Vreg.index src) ~at:20 ~width:4 in
      let w =
        match base with
        | Insn.Breg r ->
            put (put w 1 ~at:19 ~width:1) (Reg.index r) ~at:11 ~width:8
        | Insn.Sym addr ->
            let idx = pool_scalar pb addr in
            if idx >= 256 then fail "too many data symbols";
            put w idx ~at:11 ~width:8
      in
      let w = put w (Reg.index index) ~at:7 ~width:4 in
      if stride <> 2 && stride <> 4 then fail "bad stride %d" stride;
      if phase < 0 || phase >= stride then fail "bad phase %d" phase;
      let w = put w (if stride = 2 then 0 else 1) ~at:6 ~width:1 in
      put w phase ~at:4 ~width:2
  | V (Vgather { esize; signed; dst; base; index_v }) ->
      let w = put w (esize_code esize) ~at:25 ~width:2 in
      let w = put w (if signed then 1 else 0) ~at:24 ~width:1 in
      let w = put w (Vreg.index dst) ~at:20 ~width:4 in
      let w =
        match base with
        | Insn.Breg r ->
            put (put w 1 ~at:19 ~width:1) (Reg.index r) ~at:11 ~width:8
        | Insn.Sym addr ->
            let idx = pool_scalar pb addr in
            if idx >= 256 then fail "too many data symbols";
            put w idx ~at:11 ~width:8
      in
      put w (Vreg.index index_v) ~at:7 ~width:4

let encode insns =
  let pb = pool_create () in
  let words = Array.map (encode_one pb) insns in
  { words; pool = pool_finish pb }

(* --- decoding --- *)

let decode_opcode w ~at =
  match Opcode.of_int (get w ~at ~width:4) with
  | Some op -> op
  | None -> fail "bad opcode field"

let decode_cond w ~at =
  match Cond.of_int (get w ~at ~width:3) with
  | Some c -> c
  | None -> fail "bad condition field"

let decode_mem_fields w pool =
  let base =
    if get w ~at:19 ~width:1 = 1 then
      Insn.Breg (Reg.make (get w ~at:11 ~width:4))
    else
      let idx = get w ~at:11 ~width:8 in
      if idx >= Array.length pool then fail "pool index out of range";
      Insn.Sym pool.(idx)
  in
  let index =
    if get w ~at:10 ~width:1 = 1 then
      Insn.Reg (Reg.make (get w ~at:2 ~width:4))
    else Insn.Imm (get_immf w pool ~at:2 ~width:8)
  in
  (base, index, get w ~at:0 ~width:2)

let decode_vbase w pool =
  if get w ~at:19 ~width:1 = 1 then Insn.Breg (Reg.make (get w ~at:11 ~width:4))
  else
    let idx = get w ~at:11 ~width:8 in
    if idx >= Array.length pool then fail "pool index out of range";
    Insn.Sym pool.(idx)

let decode_one pool w : Minsn.exec =
  match get w ~at:27 ~width:5 with
  | 0 ->
      let cond = decode_cond w ~at:24 in
      let dst = Reg.make (get w ~at:20 ~width:4) in
      let src =
        if get w ~at:19 ~width:1 = 1 then
          Insn.Reg (Reg.make (get w ~at:15 ~width:4))
        else Insn.Imm (get_immf w pool ~at:0 ~width:15)
      in
      S (Mov { cond; dst; src })
  | 1 ->
      let cond = decode_cond w ~at:24 in
      let op = decode_opcode w ~at:20 in
      let dst = Reg.make (get w ~at:16 ~width:4) in
      let src1 = Reg.make (get w ~at:12 ~width:4) in
      let src2 =
        if get w ~at:11 ~width:1 = 1 then
          Insn.Reg (Reg.make (get w ~at:7 ~width:4))
        else Insn.Imm (get_immf w pool ~at:0 ~width:11)
      in
      S (Dp { cond; op; dst; src1; src2 })
  | 2 ->
      let esize = esize_of_code (get w ~at:25 ~width:2) in
      let signed = get w ~at:24 ~width:1 = 1 in
      let dst = Reg.make (get w ~at:20 ~width:4) in
      let base, index, shift = decode_mem_fields w pool in
      S (Ld { esize; signed; dst; base; index; shift })
  | 3 ->
      let esize = esize_of_code (get w ~at:25 ~width:2) in
      let src = Reg.make (get w ~at:20 ~width:4) in
      let base, index, shift = decode_mem_fields w pool in
      S (St { esize; src; base; index; shift })
  | 4 ->
      let src1 = Reg.make (get w ~at:20 ~width:4) in
      let src2 =
        if get w ~at:19 ~width:1 = 1 then
          Insn.Reg (Reg.make (get w ~at:15 ~width:4))
        else Insn.Imm (get_immf w pool ~at:0 ~width:15)
      in
      S (Cmp { src1; src2 })
  | 5 ->
      S (B { cond = decode_cond w ~at:24; target = get w ~at:0 ~width:24 })
  | 6 ->
      S
        (Bl
           {
             region = get w ~at:26 ~width:1 = 1;
             target = get w ~at:0 ~width:24;
           })
  | 7 -> S Ret
  | 8 -> S Halt
  | 16 ->
      V
        (Vld
           {
             esize = esize_of_code (get w ~at:25 ~width:2);
             signed = get w ~at:24 ~width:1 = 1;
             dst = Vreg.make (get w ~at:20 ~width:4);
             base = decode_vbase w pool;
             index = Reg.make (get w ~at:7 ~width:4);
           })
  | 17 ->
      V
        (Vst
           {
             esize = esize_of_code (get w ~at:25 ~width:2);
             src = Vreg.make (get w ~at:20 ~width:4);
             base = decode_vbase w pool;
             index = Reg.make (get w ~at:7 ~width:4);
           })
  | 18 ->
      let op = decode_opcode w ~at:23 in
      let dst = Vreg.make (get w ~at:19 ~width:4) in
      let src1 = Vreg.make (get w ~at:15 ~width:4) in
      let src2 =
        match get w ~at:13 ~width:2 with
        | 0 -> Vinsn.VR (Vreg.make (get w ~at:9 ~width:4))
        | 1 -> Vinsn.VImm (get_immf w pool ~at:0 ~width:13)
        | 2 ->
            let idx = get w ~at:0 ~width:13 in
            if idx >= Array.length pool then fail "pool index out of range";
            let len = pool.(idx) in
            if idx + len >= Array.length pool then fail "pool vector truncated";
            Vinsn.VConst (Array.init len (fun i -> pool.(idx + 1 + i)))
        | k -> fail "bad vdp source kind %d" k
      in
      V (Vdp { op; dst; src1; src2 })
  | 19 ->
      V
        (Vsat
           {
             op = (if get w ~at:26 ~width:1 = 0 then `Add else `Sub);
             esize = esize_of_code (get w ~at:24 ~width:2);
             signed = get w ~at:23 ~width:1 = 1;
             dst = Vreg.make (get w ~at:19 ~width:4);
             src1 = Vreg.make (get w ~at:15 ~width:4);
             src2 = Vreg.make (get w ~at:11 ~width:4);
           })
  | 20 ->
      let block = get w ~at:20 ~width:5 in
      let by = get w ~at:15 ~width:5 in
      let pattern =
        match get w ~at:25 ~width:2 with
        | 0 -> Perm.Reverse block
        | 1 -> Perm.Halfswap block
        | 2 -> Perm.Rotate { block; by }
        | k -> fail "bad permutation kind %d" k
      in
      V
        (Vperm
           {
             pattern;
             dst = Vreg.make (get w ~at:11 ~width:4);
             src = Vreg.make (get w ~at:7 ~width:4);
           })
  | 21 ->
      V
        (Vred
           {
             op = decode_opcode w ~at:23;
             acc = Reg.make (get w ~at:19 ~width:4);
             src = Vreg.make (get w ~at:15 ~width:4);
           })
  | 22 ->
      V
        (Vlds
           {
             esize = esize_of_code (get w ~at:25 ~width:2);
             signed = get w ~at:24 ~width:1 = 1;
             dst = Vreg.make (get w ~at:20 ~width:4);
             base = decode_vbase w pool;
             index = Reg.make (get w ~at:7 ~width:4);
             stride = (if get w ~at:6 ~width:1 = 0 then 2 else 4);
             phase = get w ~at:4 ~width:2;
           })
  | 23 ->
      V
        (Vsts
           {
             esize = esize_of_code (get w ~at:25 ~width:2);
             src = Vreg.make (get w ~at:20 ~width:4);
             base = decode_vbase w pool;
             index = Reg.make (get w ~at:7 ~width:4);
             stride = (if get w ~at:6 ~width:1 = 0 then 2 else 4);
             phase = get w ~at:4 ~width:2;
           })
  | 24 ->
      V
        (Vgather
           {
             esize = esize_of_code (get w ~at:25 ~width:2);
             signed = get w ~at:24 ~width:1 = 1;
             dst = Vreg.make (get w ~at:20 ~width:4);
             base = decode_vbase w pool;
             index_v = Vreg.make (get w ~at:7 ~width:4);
           })
  | m -> fail "bad major opcode %d" m

let decode { words; pool } = Array.map (decode_one pool) words

let size_bytes (img : Image.t) =
  let { words; pool } = encode img.code in
  (4 * Array.length words) + (4 * Array.length pool) + img.data_bytes
