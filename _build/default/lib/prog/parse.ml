open Liquid_isa
open Liquid_visa

exception Parse_error of { line : int; message : string }

let fail line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

(* --- lexical helpers --- *)

let strip_comment s =
  match String.index_opt s ';' with
  | Some i -> String.sub s 0 i
  | None -> s

let trim = String.trim

let split_commas s =
  String.split_on_char ',' s |> List.map trim |> List.filter (fun x -> x <> "")

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun x -> x <> "")

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let drop n s = String.sub s n (String.length s - n)

let int_of line s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail line "expected an integer, got %S" s

(* --- operand parsing --- *)

let reg_of line s =
  if starts_with "r" s then
    match int_of_string_opt (drop 1 s) with
    | Some n when n >= 0 && n < Reg.count -> Reg.make n
    | Some _ | None -> fail line "bad register %S" s
  else fail line "expected a register, got %S" s

let vreg_of line s =
  if starts_with "v" s then
    match int_of_string_opt (drop 1 s) with
    | Some n when n >= 0 && n < Vreg.count -> Vreg.make n
    | Some _ | None -> fail line "bad vector register %S" s
  else fail line "expected a vector register, got %S" s

let is_reg s =
  starts_with "r" s && int_of_string_opt (drop 1 s) <> None

let operand_of line s =
  if starts_with "#" s then Insn.Imm (int_of line (drop 1 s))
  else if is_reg s then Insn.Reg (reg_of line s)
  else fail line "expected #imm or register, got %S" s

(* "[base + index lsl k]" -> base, index operand, shift *)
let mem_of line s =
  let n = String.length s in
  if n < 2 || s.[0] <> '[' || s.[n - 1] <> ']' then
    fail line "expected a memory operand, got %S" s;
  let inner = trim (String.sub s 1 (n - 2)) in
  let base_str, rest =
    match String.index_opt inner '+' with
    | Some i -> (trim (String.sub inner 0 i), trim (drop (i + 1) inner))
    | None -> (inner, "")
  in
  let base =
    if is_reg base_str then Insn.Breg (reg_of line base_str)
    else if base_str = "" then fail line "empty base in %S" s
    else Insn.Sym base_str
  in
  let index, shift =
    if rest = "" then (Insn.Imm 0, 0)
    else
      match split_ws rest with
      | [ idx ] -> (operand_of line idx, 0)
      | [ idx; "lsl"; k ] -> (operand_of line idx, int_of line k)
      | _ -> fail line "bad index expression %S" rest
  in
  (base, index, shift)

let vconst_of line s =
  (* "#[1 2 3]" *)
  let n = String.length s in
  if n < 3 || s.[1] <> '[' || s.[n - 1] <> ']' then
    fail line "bad constant vector %S" s;
  let inner = String.sub s 2 (n - 3) in
  Vinsn.VConst (Array.of_list (List.map (int_of line) (split_ws inner)))

let vsrc_of line s =
  if starts_with "#[" s then vconst_of line s
  else if starts_with "#" s then Vinsn.VImm (int_of line (drop 1 s))
  else Vinsn.VR (vreg_of line s)

(* --- mnemonic tables --- *)

let conds =
  [ ("eq", Cond.Eq); ("ne", Cond.Ne); ("gt", Cond.Gt); ("ge", Cond.Ge);
    ("lt", Cond.Lt); ("le", Cond.Le) ]

let cond_of_suffix line = function
  | "" -> Cond.Al
  | s -> (
      match List.assoc_opt s conds with
      | Some c -> c
      | None -> fail line "bad condition suffix %S" s)

let dp_mnemonics = List.map (fun op -> (Opcode.mnemonic op, op)) Opcode.all

(* "ldb", "ldhs", "ld" ... -> esize, signed *)
let load_suffix line s =
  match s with
  | "" -> (Esize.Word, true)
  | "b" -> (Esize.Byte, false)
  | "bs" -> (Esize.Byte, true)
  | "h" -> (Esize.Half, false)
  | "hs" -> (Esize.Half, true)
  | _ -> fail line "bad load suffix %S" s

let store_suffix line = function
  | "" -> Esize.Word
  | "b" -> Esize.Byte
  | "h" -> Esize.Half
  | s -> fail line "bad store suffix %S" s

let perm_of line s =
  match String.split_on_char '.' s with
  | [ "reverse"; b ] -> Perm.Reverse (int_of line b)
  | [ "bfly"; b ] -> Perm.Halfswap (int_of line b)
  | [ "rot"; b; k ] -> Perm.Rotate { block = int_of line b; by = int_of line k }
  | _ -> fail line "unknown permutation %S" s

(* --- instruction parsing --- *)

let scalar line mnemonic (ops : string list) : Insn.asm option =
  let dp2 op cond = function
    | [ d; s1; s2 ] ->
        Some
          (Insn.Dp
             {
               cond;
               op;
               dst = reg_of line d;
               src1 = reg_of line s1;
               src2 = operand_of line s2;
             })
    | _ -> fail line "expected 3 operands for %s" mnemonic
  in
  match mnemonic with
  | "ret" -> Some Insn.Ret
  | "halt" -> Some Insn.Halt
  | "cmp" -> (
      match ops with
      | [ s1; s2 ] ->
          Some (Insn.Cmp { src1 = reg_of line s1; src2 = operand_of line s2 })
      | _ -> fail line "cmp takes 2 operands")
  | "bl.region" | "bl" -> (
      match ops with
      | [ target ] ->
          Some (Insn.Bl { target; region = mnemonic = "bl.region" })
      | _ -> fail line "bl takes a label")
  | m when starts_with "ld" m -> (
      let esize, signed = load_suffix line (drop 2 m) in
      match ops with
      | [ d; mem ] ->
          let base, index, shift = mem_of line mem in
          Some (Insn.Ld { esize; signed; dst = reg_of line d; base; index; shift })
      | _ -> fail line "load takes dst, [mem]")
  | m when starts_with "st" m -> (
      let esize = store_suffix line (drop 2 m) in
      match ops with
      | [ mem; s ] ->
          let base, index, shift = mem_of line mem in
          Some (Insn.St { esize; src = reg_of line s; base; index; shift })
      | _ -> fail line "store takes [mem], src")
  | m when starts_with "mov" m -> (
      let cond = cond_of_suffix line (drop 3 m) in
      match ops with
      | [ d; s ] ->
          Some (Insn.Mov { cond; dst = reg_of line d; src = operand_of line s })
      | _ -> fail line "mov takes 2 operands")
  | m when m = "b" || List.mem_assoc (drop 1 m) conds -> (
      (* branches: b, beq, bne, bgt, bge, blt, ble *)
      if m <> "b" && not (starts_with "b" m) then None
      else
        match ops with
        | [ target ] ->
            Some (Insn.B { cond = cond_of_suffix line (drop 1 m); target })
        | _ -> fail line "branch takes a label")
  | m -> (
      (* data-processing with optional condition suffix, longest first *)
      let candidates =
        List.filter (fun (name, _) -> starts_with name m) dp_mnemonics
        |> List.sort (fun (a, _) (b, _) ->
               compare (String.length b) (String.length a))
      in
      match
        List.find_map
          (fun (name, op) ->
            let rest = drop (String.length name) m in
            if rest = "" || List.mem_assoc rest conds then Some (op, rest)
            else None)
          candidates
      with
      | Some (op, suffix) -> dp2 op (cond_of_suffix line suffix) ops
      | None -> None)

let vector line mnemonic (ops : string list) : Vinsn.asm option =
  let vindex line = function
    | Insn.Reg r, 0 -> r
    | _ -> fail line "vector memory index must be an unscaled register"
  in
  let strided_suffix line m prefix =
    (* "<prefix><esize-suffix>.<stride>.<phase>" *)
    match String.split_on_char '.' (drop (String.length prefix) m) with
    | [ sfx; stride; phase ] ->
        let esize, signed = load_suffix line sfx in
        (esize, signed, int_of line stride, int_of line phase)
    | _ -> fail line "bad strided mnemonic %S" m
  in
  match mnemonic with
  | m when starts_with "vtbl" m -> (
      let esize, signed = load_suffix line (drop 4 m) in
      match ops with
      | [ d; mem ] -> (
          (* "[table + vN]": a memory operand whose index is a vector
             register. *)
          let n = String.length mem in
          if n < 2 || mem.[0] <> '[' || mem.[n - 1] <> ']' then
            fail line "vtbl takes dst, [table + vindex]"
          else
            let inner = trim (String.sub mem 1 (n - 2)) in
            match String.index_opt inner '+' with
            | Some i ->
                let table = trim (String.sub inner 0 i) in
                let idx = trim (drop (i + 1) inner) in
                Some
                  (Vinsn.Vgather
                     {
                       esize;
                       signed;
                       dst = vreg_of line d;
                       base = Insn.Sym table;
                       index_v = vreg_of line idx;
                     })
            | None -> fail line "vtbl needs a vector index")
      | _ -> fail line "vtbl takes dst, [table + vindex]")
  | m when starts_with "vlds" m -> (
      let esize, signed, stride, phase = strided_suffix line m "vlds" in
      match ops with
      | [ d; mem ] ->
          let base, index, shift = mem_of line mem in
          Some
            (Vinsn.Vlds
               {
                 esize;
                 signed;
                 dst = vreg_of line d;
                 base;
                 index = vindex line (index, shift);
                 stride;
                 phase;
               })
      | _ -> fail line "vlds takes dst, [mem]")
  | m when starts_with "vsts" m -> (
      let esize, _, stride, phase = strided_suffix line m "vsts" in
      match ops with
      | [ mem; src ] ->
          let base, index, shift = mem_of line mem in
          Some
            (Vinsn.Vsts
               {
                 esize;
                 src = vreg_of line src;
                 base;
                 index = vindex line (index, shift);
                 stride;
                 phase;
               })
      | _ -> fail line "vsts takes [mem], src")
  | m when starts_with "vld" m -> (
      let esize, signed = load_suffix line (drop 3 m) in
      match ops with
      | [ d; mem ] ->
          let base, index, shift = mem_of line mem in
          Some
            (Vinsn.Vld
               { esize; signed; dst = vreg_of line d; base; index = vindex line (index, shift) })
      | _ -> fail line "vld takes dst, [mem]")
  | m when starts_with "vst" m -> (
      let esize = store_suffix line (drop 3 m) in
      match ops with
      | [ mem; s ] ->
          let base, index, shift = mem_of line mem in
          Some
            (Vinsn.Vst
               { esize; src = vreg_of line s; base; index = vindex line (index, shift) })
      | _ -> fail line "vst takes [mem], src")
  | m when starts_with "vperm." m -> (
      match ops with
      | [ d; s ] ->
          Some
            (Vinsn.Vperm
               { pattern = perm_of line (drop 6 m); dst = vreg_of line d; src = vreg_of line s })
      | _ -> fail line "vperm takes 2 operands")
  | m when starts_with "vred." m -> (
      match (List.assoc_opt (drop 5 m) dp_mnemonics, ops) with
      | Some op, [ acc; s ] ->
          Some (Vinsn.Vred { op; acc = reg_of line acc; src = vreg_of line s })
      | None, _ -> fail line "unknown reduction %S" m
      | _, _ -> fail line "vred takes acc, src")
  | m when starts_with "vq" m -> (
      let rest = drop 2 m in
      let op, rest =
        if starts_with "add" rest then (`Add, drop 3 rest)
        else if starts_with "sub" rest then (`Sub, drop 3 rest)
        else fail line "unknown saturating op %S" m
      in
      let signed, rest =
        if starts_with "s" rest then (true, drop 1 rest)
        else if starts_with "u" rest then (false, drop 1 rest)
        else fail line "saturating op needs s/u: %S" m
      in
      let esize =
        match rest with
        | "" -> Esize.Word
        | "b" -> Esize.Byte
        | "h" -> Esize.Half
        | _ -> fail line "bad saturating suffix %S" m
      in
      match ops with
      | [ d; s1; s2 ] ->
          Some
            (Vinsn.Vsat
               {
                 op;
                 esize;
                 signed;
                 dst = vreg_of line d;
                 src1 = vreg_of line s1;
                 src2 = vreg_of line s2;
               })
      | _ -> fail line "saturating op takes 3 operands")
  | m when starts_with "v" m -> (
      match (List.assoc_opt (drop 1 m) dp_mnemonics, ops) with
      | Some op, [ d; s1; s2 ] ->
          Some
            (Vinsn.Vdp
               {
                 op;
                 dst = vreg_of line d;
                 src1 = vreg_of line s1;
                 src2 = vsrc_of line s2;
               })
      | None, _ -> None
      | _, _ -> fail line "vector op takes 3 operands")
  | _ -> None

let insn_of_line lineno text : Minsn.asm =
  let mnemonic, rest =
    match String.index_opt text ' ' with
    | Some i -> (String.sub text 0 i, trim (drop (i + 1) text))
    | None -> (text, "")
  in
  let ops = split_commas rest in
  if starts_with "v" mnemonic && mnemonic <> "" then
    match vector lineno mnemonic ops with
    | Some vi -> Minsn.V vi
    | None -> fail lineno "unknown vector mnemonic %S" mnemonic
  else
    match scalar lineno mnemonic ops with
    | Some i -> Minsn.S i
    | None -> fail lineno "unknown mnemonic %S" mnemonic

(* --- data parsing --- *)

let data_of_line lineno name directive : Data.t =
  match split_ws directive with
  | [] -> fail lineno "empty data directive"
  | kind :: values -> (
      let parse_kind base =
        if kind = "." ^ base then Some `Values
        else if starts_with ("." ^ base ^ "[") kind then begin
          let open_b = String.length base + 2 in
          let close = String.length kind - 1 in
          if kind.[close] <> ']' then fail lineno "bad size in %S" kind
          else Some (`Zeros (int_of lineno (String.sub kind open_b (close - open_b))))
        end
        else None
      in
      let esize_of = function
        | "word" -> Esize.Word
        | "half" -> Esize.Half
        | "byte" -> Esize.Byte
        | s -> fail lineno "unknown data kind %S" s
      in
      match
        List.find_map
          (fun base ->
            match parse_kind base with
            | Some shape -> Some (esize_of base, shape)
            | None -> None)
          [ "word"; "half"; "byte" ]
      with
      | Some (esize, `Values) ->
          Data.make ~name ~esize (Array.of_list (List.map (int_of lineno) values))
      | Some (esize, `Zeros n) ->
          if values <> [] then fail lineno "sized array takes no values";
          Data.zeros ~name ~esize n
      | None -> fail lineno "unknown data directive %S" kind)

(* --- program parsing --- *)

type section = Text | DataSec

let program ?(name = "asm") source =
  let text = ref [] and data = ref [] in
  let section = ref Text in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let linestr = trim (strip_comment raw) in
      if linestr <> "" then
        if linestr = ".text" then section := Text
        else if linestr = ".data" then section := DataSec
        else
          match String.index_opt linestr ':' with
          | Some ci -> (
              let label = trim (String.sub linestr 0 ci) in
              let rest = trim (drop (ci + 1) linestr) in
              if label = "" then fail lineno "empty label"
              else
                match !section with
                | Text ->
                    if rest <> "" then
                      fail lineno "labels must be on their own line";
                    text := Program.Label label :: !text
                | DataSec -> data := data_of_line lineno label rest :: !data)
          | None -> (
              match !section with
              | Text -> text := Program.I (insn_of_line lineno linestr) :: !text
              | DataSec -> fail lineno "expected a data definition"))
    (String.split_on_char '\n' source);
  Program.make ~name ~text:(List.rev !text) ~data:(List.rev !data)

(* --- emission --- *)

let emit (p : Program.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "; program %s\n.text\n" p.Program.name);
  List.iter
    (function
      | Program.Label l -> Buffer.add_string buf (l ^ ":\n")
      | Program.I insn ->
          Buffer.add_string buf (Format.asprintf "    %a\n" Minsn.pp_asm insn))
    p.Program.text;
  if p.Program.data <> [] then Buffer.add_string buf ".data\n";
  List.iter
    (fun (d : Data.t) ->
      let kind =
        match d.Data.esize with
        | Esize.Word -> "word"
        | Esize.Half -> "half"
        | Esize.Byte -> "byte"
      in
      if Array.for_all (fun v -> v = 0) d.Data.values then
        Buffer.add_string buf
          (Printf.sprintf "%s: .%s[%d]\n" d.Data.name kind
             (Array.length d.Data.values))
      else
        Buffer.add_string buf
          (Printf.sprintf "%s: .%s %s\n" d.Data.name kind
             (String.concat " "
                (List.map string_of_int (Array.to_list d.Data.values)))))
    p.Program.data;
  Buffer.contents buf
