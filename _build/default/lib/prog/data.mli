(** Static data arrays of a program.

    Every array is aligned at layout time to
    [max_width * element_bytes] — the paper's alignment rule (§3.1): data
    is aligned for the {e maximum} vectorizable width so that one binary
    can be retargeted to any narrower accelerator. *)

open Liquid_isa

type t = { name : string; esize : Esize.t; values : int array }

val make : name:string -> esize:Esize.t -> int array -> t
(** Values are truncated (two's complement) to the element size. *)

val zeros : name:string -> esize:Esize.t -> int -> t
val byte_size : t -> int
val alignment : t -> int
val pp : Format.formatter -> t -> unit
