open Liquid_isa
open Liquid_visa

type item = Label of string | I of Minsn.asm

type t = { name : string; text : item list; data : Data.t list }

let make ~name ~text ~data = { name; text; data }

let insns t =
  List.filter_map (function Label _ -> None | I i -> Some i) t.text

let labels t =
  List.filter_map (function Label l -> Some l | I _ -> None) t.text

let scalar_only t = not (List.exists Minsn.is_vector (insns t))

let find_data t name = List.find_opt (fun (d : Data.t) -> d.name = name) t.data

let append_data t extra =
  List.iter
    (fun (d : Data.t) ->
      if find_data t d.name <> None then
        invalid_arg
          (Printf.sprintf "Program.append_data: duplicate array %s" d.name))
    extra;
  { t with data = t.data @ extra }

let rec find_dup seen = function
  | [] -> None
  | x :: rest -> if List.mem x seen then Some x else find_dup (x :: seen) rest

let insn_symbols (i : Minsn.asm) =
  let of_base = function Insn.Sym s -> [ s ] | Insn.Breg _ -> [] in
  match i with
  | S (Ld { base; _ }) | S (St { base; _ }) -> of_base base
  | V (Vld { base; _ })
  | V (Vst { base; _ })
  | V (Vlds { base; _ })
  | V (Vsts { base; _ })
  | V (Vgather { base; _ }) ->
      of_base base
  | S (Mov _ | Dp _ | Cmp _ | B _ | Bl _ | Ret | Halt)
  | V (Vdp _ | Vsat _ | Vperm _ | Vred _) ->
      []

let insn_targets (i : Minsn.asm) =
  match i with
  | S (B { target; _ }) | S (Bl { target; _ }) -> [ target ]
  | S (Mov _ | Dp _ | Ld _ | St _ | Cmp _ | Ret | Halt) | V _ -> []

let validate t =
  let labels = labels t in
  let data_names = List.map (fun (d : Data.t) -> d.name) t.data in
  let insns = insns t in
  match find_dup [] labels with
  | Some l -> Error (Printf.sprintf "duplicate label %s" l)
  | None -> (
      match find_dup [] data_names with
      | Some d -> Error (Printf.sprintf "duplicate data array %s" d)
      | None -> (
          let missing_sym =
            List.concat_map insn_symbols insns
            |> List.find_opt (fun s -> not (List.mem s data_names))
          in
          match missing_sym with
          | Some s -> Error (Printf.sprintf "undefined data symbol %s" s)
          | None -> (
              let missing_lab =
                List.concat_map insn_targets insns
                |> List.find_opt (fun l -> not (List.mem l labels))
              in
              match missing_lab with
              | Some l -> Error (Printf.sprintf "undefined label %s" l)
              | None -> Ok ())))

let pp ppf t =
  Format.fprintf ppf "@[<v>; program %s@ .text@ " t.name;
  List.iter
    (function
      | Label l -> Format.fprintf ppf "%s:@ " l
      | I i -> Format.fprintf ppf "  %a@ " Minsn.pp_asm i)
    t.text;
  Format.fprintf ppf ".data@ ";
  List.iter (fun d -> Format.fprintf ppf "  %a@ " Data.pp d) t.data;
  Format.fprintf ppf "@]"
