open Liquid_isa

type t = { name : string; esize : Esize.t; values : int array }

let make ~name ~esize values =
  { name; esize; values = Array.map (Esize.truncate esize) values }

let zeros ~name ~esize n = { name; esize; values = Array.make n 0 }
let byte_size t = Array.length t.values * Esize.bytes t.esize

let alignment t =
  Liquid_visa.Width.lanes Liquid_visa.Width.max * Esize.bytes t.esize

let pp ppf t =
  Format.fprintf ppf "%s: .%a[%d]" t.name Esize.pp t.esize
    (Array.length t.values)
