(** Fixed-width binary encoding of executable images.

    Each instruction occupies one 32-bit word. Values that do not fit
    their inline field (large immediates, absolute data addresses,
    per-lane constant vectors) are placed in a shared literal pool and
    referenced by index, in the spirit of ARM literal pools. The encoding
    exists to (a) demonstrate the virtualized representation fits a real
    fixed-width ISA, (b) support the paper's code-size-overhead
    measurement, and (c) give the decoder/round-trip tests a ground
    truth. *)

open Liquid_visa

exception Encode_error of string

type encoded = {
  words : int array;  (** one 32-bit word per instruction *)
  pool : int array;  (** shared literal pool *)
}

val encode : Minsn.exec array -> encoded
(** Raises {!Encode_error} if a field exceeds its range (e.g., more than
    256 distinct data symbols, or a branch target beyond 2^24). *)

val decode : encoded -> Minsn.exec array
(** Inverse of {!encode}. Raises {!Encode_error} on malformed words. *)

val size_bytes : Image.t -> int
(** Total binary footprint: instruction words + literal pool + data
    segment. This is the metric used for the paper's §5 code-size
    comparison. *)
