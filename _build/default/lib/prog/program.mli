(** Assembly-level programs: a text section of labeled mixed instructions
    plus static data arrays. *)

open Liquid_visa

type item = Label of string | I of Minsn.asm

type t = { name : string; text : item list; data : Data.t list }

val make : name:string -> text:item list -> data:Data.t list -> t

val insns : t -> Minsn.asm list
val labels : t -> string list
val scalar_only : t -> bool
(** True when no vector instruction appears — i.e., the program can run
    on a machine without a SIMD accelerator. *)

val find_data : t -> string -> Data.t option
val append_data : t -> Data.t list -> t
(** Add arrays; raises [Invalid_argument] on duplicate names. *)

val validate : t -> (unit, string) result
(** Check label/symbol integrity: no duplicate labels or data names, all
    branch targets defined, all data symbols defined, register/field
    ranges respected. *)

val pp : Format.formatter -> t -> unit
(** Full listing: text section with labels, then data section. *)
