open Liquid_isa
open Liquid_visa

let base_annotation (image : Image.t option) addr =
  match image with
  | None -> None
  | Some img -> (
      match Image.array_at img addr with
      | Some (name, _) ->
          let off = addr - Image.array_addr img name in
          Some (if off = 0 then name else Printf.sprintf "%s+%d" name off)
      | None -> None)

let label_annotation (image : Image.t option) target =
  match image with
  | None -> None
  | Some img ->
      List.find_map
        (fun (l, idx) -> if idx = target then Some l else None)
        img.Image.labels

let insn_annotations image (mi : Minsn.exec) =
  let of_base = function
    | Insn.Sym addr -> base_annotation image addr
    | Insn.Breg _ -> None
  in
  match mi with
  | Minsn.S (Insn.Ld { base; _ })
  | Minsn.S (Insn.St { base; _ })
  | Minsn.V (Vinsn.Vld { base; _ })
  | Minsn.V (Vinsn.Vst { base; _ })
  | Minsn.V (Vinsn.Vlds { base; _ })
  | Minsn.V (Vinsn.Vsts { base; _ })
  | Minsn.V (Vinsn.Vgather { base; _ }) ->
      of_base base
  | Minsn.S (Insn.B { target; _ }) | Minsn.S (Insn.Bl { target; _ }) ->
      label_annotation image target
  | Minsn.S (Insn.Mov _ | Insn.Dp _ | Insn.Cmp _ | Insn.Ret | Insn.Halt)
  | Minsn.V (Vinsn.Vdp _ | Vinsn.Vsat _ | Vinsn.Vperm _ | Vinsn.Vred _) ->
      None

let listing ?image (enc : Encode.encoded) =
  let insns = Encode.decode enc in
  let buf = Buffer.create 1024 in
  Array.iteri
    (fun idx mi ->
      (match label_annotation image idx with
      | Some l -> Buffer.add_string buf (l ^ ":\n")
      | None -> ());
      let text = Format.asprintf "%a" Minsn.pp_exec mi in
      (match insn_annotations image mi with
      | Some note ->
          Buffer.add_string buf (Printf.sprintf "%5d:  %-40s ; %s\n" idx text note)
      | None -> Buffer.add_string buf (Printf.sprintf "%5d:  %s\n" idx text)))
    insns;
  Buffer.contents buf

let of_image (img : Image.t) = listing ~image:img (Encode.encode img.Image.code)
