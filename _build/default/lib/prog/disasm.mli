(** Disassembler: annotated listings from encoded binaries.

    Decodes a binary back to instructions and renders them with
    recovered branch-target labels and symbolic data-array names, so a
    listing of [Encode.encode image.code] reads like the original
    assembly rather than raw addresses. *)

val listing : ?image:Image.t -> Encode.encoded -> string
(** One line per instruction, [<index>: <instruction>]. When [image] is
    given, its label table annotates branch targets and its data arrays
    replace absolute addresses with [name+offset] comments. *)

val of_image : Image.t -> string
(** Encode the image and disassemble it back — the round-trip listing
    used by the CLI's [disasm --binary]. *)
