(** Assembly source: a textual front end for programs.

    The syntax is the one {!Liquid_isa.Insn.pp_asm} and
    {!Liquid_visa.Vinsn.pp_asm} print, plus section directives and data
    initializers:

    {v
    ; comments run to end of line
    .text
    main:
        mov r1, #0
    loop:
        ld r2, [xs + r1 lsl 2]
        add r3, r3, r2
        add r1, r1, #1
        cmp r1, #4
        blt loop
        st [sum], r3
        halt
    .data
    xs: .word 10 20 30 40
    sum: .word[1]          ; zero-initialized
    v}

    {!emit} prints a program in exactly this syntax, so
    [parse (emit p) = p] for every well-formed program. *)

exception Parse_error of { line : int; message : string }

val program : ?name:string -> string -> Program.t
(** Parse assembly source. Raises {!Parse_error} with a 1-based line
    number on malformed input. The result is not validated beyond
    syntax; run {!Program.validate} (or {!Image.of_program}) next. *)

val emit : Program.t -> string
(** Print a program as parseable assembly source (unlike {!Program.pp},
    data arrays are emitted with their full contents). *)
