let page_bits = 12
let page_size = 1 lsl page_bits
let page_mask = page_size - 1
let addr_mask = 0xFFFFFFFF

type t = { pages : (int, Bytes.t) Hashtbl.t }

let create () = { pages = Hashtbl.create 64 }

let copy m =
  let pages = Hashtbl.create (Hashtbl.length m.pages) in
  Hashtbl.iter (fun k v -> Hashtbl.replace pages k (Bytes.copy v)) m.pages;
  { pages }

let page_of m idx =
  match Hashtbl.find_opt m.pages idx with
  | Some p -> p
  | None ->
      let p = Bytes.make page_size '\000' in
      Hashtbl.replace m.pages idx p;
      p

let read_byte m addr =
  let addr = addr land addr_mask in
  match Hashtbl.find_opt m.pages (addr lsr page_bits) with
  | None -> 0
  | Some p -> Char.code (Bytes.unsafe_get p (addr land page_mask))

let write_byte m addr v =
  let addr = addr land addr_mask in
  let p = page_of m (addr lsr page_bits) in
  Bytes.unsafe_set p (addr land page_mask) (Char.unsafe_chr (v land 0xFF))

let sign_extend ~bits v =
  let shift = Sys.int_size - bits in
  (v lsl shift) asr shift

let read m ~addr ~bytes ~signed =
  let raw =
    match bytes with
    | 1 -> read_byte m addr
    | 2 -> read_byte m addr lor (read_byte m (addr + 1) lsl 8)
    | 4 ->
        read_byte m addr
        lor (read_byte m (addr + 1) lsl 8)
        lor (read_byte m (addr + 2) lsl 16)
        lor (read_byte m (addr + 3) lsl 24)
    | n -> invalid_arg (Printf.sprintf "Memory.read: bad size %d" n)
  in
  if signed || bytes = 4 then sign_extend ~bits:(bytes * 8) raw else raw

let write m ~addr ~bytes v =
  match bytes with
  | 1 -> write_byte m addr v
  | 2 ->
      write_byte m addr v;
      write_byte m (addr + 1) (v asr 8)
  | 4 ->
      write_byte m addr v;
      write_byte m (addr + 1) (v asr 8);
      write_byte m (addr + 2) (v asr 16);
      write_byte m (addr + 3) (v asr 24)
  | n -> invalid_arg (Printf.sprintf "Memory.write: bad size %d" n)

let blit_bytes m ~addr src =
  Bytes.iteri (fun i c -> write_byte m (addr + i) (Char.code c)) src

let touched_pages m = Hashtbl.length m.pages

let zero_page = Bytes.make page_size '\000'

let equal a b =
  let check pages_a pages_b =
    Hashtbl.fold
      (fun idx pa acc ->
        acc
        &&
        match Hashtbl.find_opt pages_b idx with
        | Some pb -> Bytes.equal pa pb
        | None -> Bytes.equal pa zero_page)
      pages_a true
  in
  check a.pages b.pages && check b.pages a.pages

let diff a b =
  let out = ref [] and count = ref 0 in
  let page_indices = Hashtbl.create 16 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace page_indices k ()) a.pages;
  Hashtbl.iter (fun k _ -> Hashtbl.replace page_indices k ()) b.pages;
  Hashtbl.iter
    (fun idx () ->
      if !count < 32 then
        for off = 0 to page_size - 1 do
          let addr = (idx lsl page_bits) lor off in
          let va = read_byte a addr and vb = read_byte b addr in
          if va <> vb && !count < 32 then begin
            out := (addr, va, vb) :: !out;
            incr count
          end
        done)
    page_indices;
  List.rev !out
