(** Mutable counters collected during a simulation run. *)

type t = {
  mutable cycles : int;  (** total elapsed cycles *)
  mutable scalar_insns : int;  (** retired baseline-ISA instructions *)
  mutable vector_insns : int;  (** retired SIMD instructions *)
  mutable loads : int;
  mutable stores : int;
  mutable branches : int;
  mutable branch_mispredicts : int;
  mutable icache_hits : int;
  mutable icache_misses : int;
  mutable dcache_hits : int;
  mutable dcache_misses : int;
  mutable region_calls : int;  (** calls of outlined (translatable) regions *)
  mutable ucode_hits : int;  (** region calls served from the microcode cache *)
  mutable ucode_installs : int;
  mutable ucode_evictions : int;
  mutable translations_started : int;
  mutable translations_aborted : int;
  mutable translation_busy_cycles : int;
      (** cycles during which the translator was occupied *)
}

val create : unit -> t
val reset : t -> unit
val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc] field-wise. *)

val total_insns : t -> int
val pp : Format.formatter -> t -> unit
