lib/machine/cache.mli:
