lib/machine/memory.ml: Bytes Char Hashtbl List Printf Sys
