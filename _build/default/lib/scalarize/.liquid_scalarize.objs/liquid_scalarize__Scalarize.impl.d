lib/scalarize/scalarize.ml: Array Build Cond Data Esize Format Hashtbl Insn Liquid_isa Liquid_prog Liquid_visa List Minsn Opcode Perm Printf Program Reg String Vinsn Vloop Vreg
