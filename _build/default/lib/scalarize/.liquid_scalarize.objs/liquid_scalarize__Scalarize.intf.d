lib/scalarize/scalarize.mli: Data Esize Liquid_isa Liquid_prog Liquid_visa Opcode Perm Program Reg Vinsn Vloop Vreg
