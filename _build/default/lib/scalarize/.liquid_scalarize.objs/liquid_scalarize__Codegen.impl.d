lib/scalarize/codegen.ml: Build Data Hashtbl Liquid_prog List Native_gen Printf Program Scalarize Vloop
