lib/scalarize/native_gen.mli: Data Liquid_prog Program Vloop
