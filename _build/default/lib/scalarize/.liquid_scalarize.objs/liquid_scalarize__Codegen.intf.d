lib/scalarize/codegen.mli: Liquid_prog Program Vloop
