lib/scalarize/vloop.ml: Array Format Insn Liquid_isa Liquid_prog Liquid_visa List Option Perm Printf Reg Result Vinsn Vreg
