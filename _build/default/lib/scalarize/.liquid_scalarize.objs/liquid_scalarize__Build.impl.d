lib/scalarize/build.ml: Array Cond Esize Insn Liquid_isa Liquid_prog Liquid_visa List Minsn Opcode Perm Program Reg Vinsn Vreg
