lib/scalarize/vloop.mli: Format Liquid_isa Liquid_prog Liquid_visa Reg Vinsn
