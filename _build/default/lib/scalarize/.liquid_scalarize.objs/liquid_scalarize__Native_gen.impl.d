lib/scalarize/native_gen.ml: Array Build Cond Data Esize Format Insn Liquid_isa Liquid_prog Liquid_visa List Minsn Perm Printf Program Vinsn Vloop Vreg
