lib/scalarize/build.mli: Cond Esize Insn Liquid_isa Liquid_prog Liquid_visa Opcode Program Reg Vinsn Vreg
