open Liquid_isa
open Liquid_visa
open Liquid_prog

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type fitem =
  | FLoad of {
      esize : Esize.t;
      signed : bool;
      dst : Vreg.t;
      sym : string;
      perm : Perm.t option;
    }
  | FStore of {
      esize : Esize.t;
      src : Vreg.t;
      sym : string;
      perm : Perm.t option;
    }
  | FLoadS of {
      esize : Esize.t;
      signed : bool;
      dst : Vreg.t;
      sym : string;
      stride : int;
      phase : int;
    }
  | FStoreS of {
      esize : Esize.t;
      src : Vreg.t;
      sym : string;
      stride : int;
      phase : int;
    }
  | FGather of {
      esize : Esize.t;
      signed : bool;
      dst : Vreg.t;
      sym : string;
      index_v : Vreg.t;
    }
  | FDp of { op : Opcode.t; dst : Vreg.t; src1 : Vreg.t; src2 : Vinsn.vsrc }
  | FSat of {
      op : [ `Add | `Sub ];
      esize : Esize.t;
      signed : bool;
      dst : Vreg.t;
      src1 : Vreg.t;
      src2 : Vreg.t;
    }
  | FRed of { op : Opcode.t; acc : Reg.t; src : Vreg.t }

type segment = {
  label : string;
  items : fitem list;
  red_inits : (Reg.t * int) list;
}

type output = {
  segments : segment list;
  call_items : Program.item list;
  region_items : Program.item list;
  inline_items : Program.item list;
  data : Data.t list;
  static_sizes : (string * int) list;
}

let estimated_cost = function
  | FLoad { perm = None; _ } | FStore { perm = None; _ } -> 1
  | FLoad { perm = Some _; _ } | FStore { perm = Some _; _ } -> 3
  | FLoadS { phase; _ } | FStoreS { phase; _ } -> if phase = 0 then 2 else 3
  | FGather _ -> 1
  | FDp { src2 = VConst _; _ } -> 2
  | FDp _ | FRed _ -> 1
  | FSat { signed; _ } -> if signed then 5 else 3

(* --- generated-array bookkeeping, shared by every loop of a program --- *)

type arrays = {
  mutable data : Data.t list;  (* reversed *)
  offsets : (string, unit) Hashtbl.t;
  consts : (int list * int, string) Hashtbl.t;
  mutable const_counter : int;
  mutable tmp_counter : int;
}

let arrays_create () =
  {
    data = [];
    offsets = Hashtbl.create 8;
    consts = Hashtbl.create 8;
    const_counter = 0;
    tmp_counter = 0;
  }

let sanitize s =
  String.map (function '.' -> '_' | c -> c) s

let offsets_sym arrays pattern ~count =
  let name = Format.asprintf "off_%s_%d" (sanitize (Format.asprintf "%a" Perm.pp pattern)) count in
  if not (Hashtbl.mem arrays.offsets name) then begin
    let base = Perm.offsets pattern in
    let period = Array.length base in
    let values = Array.init count (fun e -> base.(e mod period)) in
    arrays.data <- Data.make ~name ~esize:Esize.Word values :: arrays.data;
    Hashtbl.replace arrays.offsets name ()
  end;
  name

let const_sym arrays values ~loop ~count =
  let key = (Array.to_list values, count) in
  match Hashtbl.find_opt arrays.consts key with
  | Some name -> name
  | None ->
      arrays.const_counter <- arrays.const_counter + 1;
      let name = Printf.sprintf "cnst_%s_%d" loop arrays.const_counter in
      let period = Array.length values in
      let tiled = Array.init count (fun e -> values.(e mod period)) in
      arrays.data <- Data.make ~name ~esize:Esize.Word tiled :: arrays.data;
      Hashtbl.replace arrays.consts key name;
      name

let tmp_sym arrays ~loop ~count =
  arrays.tmp_counter <- arrays.tmp_counter + 1;
  let name = Printf.sprintf "%s_tmp%d" loop arrays.tmp_counter in
  arrays.data <- Data.zeros ~name ~esize:Esize.Word count :: arrays.data;
  name

(* --- segmentation: fusion and fission --- *)

type seg_state = {
  loop_name : string;
  count : int;
  max_scalar : int;
  arrays : arrays;
  mutable segs : fitem list list;  (* reversed, each reversed *)
  mutable cur : fitem list;  (* reversed *)
  mutable cur_cost : int;
  mutable avail : int list;  (* vreg indices with a live definition *)
  spilled : (int, string) Hashtbl.t;
      (* vreg index -> temporary array holding its last spilled value;
         consulted lazily when a later segment needs the register *)
  (* Aliasing hazards within the current segment. A permuted access
     reads or writes other iterations' element slots, so its scalar
     (per-iteration) and vector (per-block) memory orders differ; such
     an access must not share a segment with any other access to the
     same array (fission restores whole-phase ordering, which both
     forms agree on). *)
  seg_stores : (string, unit) Hashtbl.t;
  seg_loads : (string, unit) Hashtbl.t;
  seg_perm_loads : (string, unit) Hashtbl.t;
  seg_perm_stores : (string, unit) Hashtbl.t;
}

let vidx = Vreg.index
let available st r = List.mem (vidx r) st.avail

let define st r =
  if not (available st r) then st.avail <- vidx r :: st.avail

let used_later r rest =
  List.exists (fun vi -> List.exists (Vreg.equal r) (Vinsn.uses_vector vi)) rest

let push st fi =
  (match fi with
  | FLoad { perm = None; sym; _ } -> Hashtbl.replace st.seg_loads sym ()
  | FLoad { perm = Some _; sym; _ } -> Hashtbl.replace st.seg_perm_loads sym ()
  | FStore { perm = None; sym; _ } -> Hashtbl.replace st.seg_stores sym ()
  | FStore { perm = Some _; sym; _ } -> Hashtbl.replace st.seg_perm_stores sym ()
  | FLoadS { sym; _ } | FGather { sym; _ } -> Hashtbl.replace st.seg_loads sym ()
  | FStoreS { sym; _ } -> Hashtbl.replace st.seg_stores sym ()
  | FDp _ | FSat _ | FRed _ -> ());
  st.cur <- fi :: st.cur;
  st.cur_cost <- st.cur_cost + estimated_cost fi

(* Make a source register live in the current segment, reloading it from
   its spill temporary when an earlier fission pushed it to memory. *)
let ensure_available st r what =
  if not (available st r) then
    match Hashtbl.find_opt st.spilled (vidx r) with
    | Some sym ->
        push st
          (FLoad { esize = Esize.Word; signed = true; dst = r; sym; perm = None });
        define st r
    | None ->
        error "%s: %s uses undefined vector register %a" st.loop_name what
          Vreg.pp r

(* Spill every live register still needed by [remaining] to temporary
   arrays and close the current segment. Reloads happen lazily through
   {!ensure_available}. *)
let split st ~remaining =
  List.iter
    (fun i ->
      if used_later (Vreg.make i) remaining then begin
        let sym = tmp_sym st.arrays ~loop:st.loop_name ~count:st.count in
        push st
          (FStore { esize = Esize.Word; src = Vreg.make i; sym; perm = None });
        Hashtbl.replace st.spilled i sym
      end)
    (List.sort_uniq compare st.avail);
  st.segs <- st.cur :: st.segs;
  st.cur <- [];
  st.cur_cost <- 0;
  st.avail <- [];
  Hashtbl.reset st.seg_stores;
  Hashtbl.reset st.seg_loads;
  Hashtbl.reset st.seg_perm_loads;
  Hashtbl.reset st.seg_perm_stores

(* Lower a non-permutation instruction to its fused form; pure — no
   register-state updates. *)
let lower_plain st vi =
  match vi with
  | Vinsn.Vld { esize; signed; dst; base = Insn.Sym sym; index = _ } ->
      FLoad { esize; signed; dst; sym; perm = None }
  | Vinsn.Vld { base = Insn.Breg _; _ } ->
      error "%s: register-based vector load address" st.loop_name
  | Vinsn.Vst { esize; src; base = Insn.Sym sym; index = _ } ->
      FStore { esize; src; sym; perm = None }
  | Vinsn.Vst { base = Insn.Breg _; _ } ->
      error "%s: register-based vector store address" st.loop_name
  | Vinsn.Vlds { esize; signed; dst; base = Insn.Sym sym; index = _; stride; phase }
    ->
      FLoadS { esize; signed; dst; sym; stride; phase }
  | Vinsn.Vsts { esize; src; base = Insn.Sym sym; index = _; stride; phase } ->
      FStoreS { esize; src; sym; stride; phase }
  | Vinsn.Vlds { base = Insn.Breg _; _ } | Vinsn.Vsts { base = Insn.Breg _; _ } ->
      error "%s: register-based strided access address" st.loop_name
  | Vinsn.Vgather { esize; signed; dst; base = Insn.Sym sym; index_v } ->
      FGather { esize; signed; dst; sym; index_v }
  | Vinsn.Vgather { base = Insn.Breg _; _ } ->
      error "%s: register-based gather address" st.loop_name
  | Vinsn.Vdp { op; dst; src1; src2 } -> FDp { op; dst; src1; src2 }
  | Vinsn.Vsat { op; esize; signed; dst; src1; src2 } ->
      FSat { op; esize; signed; dst; src1; src2 }
  | Vinsn.Vred { op; acc; src } -> FRed { op; acc; src }
  | Vinsn.Vperm _ -> assert false

let fitem_sources = function
  | FLoad _ | FLoadS _ -> []
  | FGather { index_v; _ } -> [ index_v ]
  | FStore { src; _ } | FStoreS { src; _ } -> [ src ]
  | FDp { src1; src2; _ } -> (
      src1 :: (match src2 with VR r -> [ r ] | VImm _ | VConst _ -> []))
  | FSat { src1; src2; _ } -> [ src1; src2 ]
  | FRed { src; _ } -> [ src ]

let fitem_def = function
  | FLoad { dst; _ } | FLoadS { dst; _ } | FGather { dst; _ } | FDp { dst; _ }
  | FSat { dst; _ } ->
      Some dst
  | FStore _ | FStoreS _ | FRed _ -> None

(* Would pushing this item violate the aliasing discipline of the
   current segment? *)
let hazard st fi =
  match fi with
  | FLoad { perm = None; sym; _ } | FLoadS { sym; _ } | FGather { sym; _ } ->
      Hashtbl.mem st.seg_perm_stores sym
  | FStore { perm = None; sym; _ } | FStoreS { sym; _ } ->
      Hashtbl.mem st.seg_perm_loads sym || Hashtbl.mem st.seg_perm_stores sym
  | FLoad { perm = Some _; sym; _ } ->
      Hashtbl.mem st.seg_stores sym || Hashtbl.mem st.seg_perm_stores sym
  | FStore { perm = Some _; sym; _ } ->
      Hashtbl.mem st.seg_stores sym || Hashtbl.mem st.seg_loads sym
      || Hashtbl.mem st.seg_perm_loads sym
      || Hashtbl.mem st.seg_perm_stores sym
  | FDp _ | FSat _ | FRed _ -> false

let rec go st remaining =
  match remaining with
  | [] -> st.segs <- st.cur :: st.segs
  | Vinsn.Vperm { pattern; dst; src } :: rest -> (
      (* If the source lives in a spill temporary, this reload becomes
         the load the permutation fuses with. *)
      ensure_available st src "permutation";
      match (st.cur, rest) with
      (* Fuse with the load that produced the source — unless the
         segment already stores to that array (the permuted read would
         then observe a different memory order than the vector form). *)
      | FLoad fl :: cur_rest, _
        when fl.perm = None && Vreg.equal fl.dst src
             && (Vreg.equal dst src || not (used_later src rest))
             && not (hazard st (FLoad { fl with perm = Some pattern })) ->
          st.cur <- FLoad { fl with dst; perm = Some pattern } :: cur_rest;
          st.cur_cost <- st.cur_cost + 2;
          Hashtbl.replace st.seg_perm_loads fl.sym ();
          define st dst;
          go st rest
      (* Fuse with the store that consumes the result, splitting first
         if the segment already touches the target array. *)
      | _, Vinsn.Vst { esize; src = st_src; base = Insn.Sym sym; index = _ } :: rest'
        when Vreg.equal st_src dst && not (used_later dst rest') ->
          let fused = FStore { esize; src; sym; perm = Some pattern } in
          if hazard st fused then begin
            split st ~remaining;
            ensure_available st src "permutation"
          end;
          push st fused;
          go st rest'
      (* Otherwise: fission, folding the permutation into the reload of
         its source from the spill temporary. *)
      | _, _ ->
          split st ~remaining;
          let src_sym =
            match Hashtbl.find_opt st.spilled (vidx src) with
            | Some sym -> sym
            | None ->
                error "%s: permutation source vanished across fission"
                  st.loop_name
          in
          push st
            (FLoad
               {
                 esize = Esize.Word;
                 signed = true;
                 dst;
                 sym = src_sym;
                 perm = Some pattern;
               });
          define st dst;
          go st rest)
  | vi :: rest ->
      let fi = lower_plain st vi in
      if
        st.cur <> []
        && (st.cur_cost + estimated_cost fi > st.max_scalar || hazard st fi)
      then split st ~remaining;
      List.iter (fun r -> ensure_available st r "operation") (fitem_sources fi);
      push st fi;
      (match fitem_def fi with Some d -> define st d | None -> ());
      go st rest

let max_scalar_default = 56

let segment_items ?(max_scalar = max_scalar_default) (loop : Vloop.t) arrays =
  (match Vloop.validate loop with Ok () -> () | Error m -> raise (Error m));
  let st =
    {
      loop_name = loop.Vloop.name;
      count = loop.Vloop.count;
      max_scalar;
      arrays;
      segs = [];
      cur = [];
      cur_cost = 0;
      avail = [];
      spilled = Hashtbl.create 8;
      seg_stores = Hashtbl.create 8;
      seg_loads = Hashtbl.create 8;
      seg_perm_loads = Hashtbl.create 8;
      seg_perm_stores = Hashtbl.create 8;
    }
  in
  go st loop.Vloop.body;
  List.rev_map List.rev st.segs |> List.filter (fun items -> items <> [])

(* --- emission --- *)

let ind = Vloop.induction
let tmp = Vloop.scratch
let sreg r = Reg.make (Vreg.index r)

let emit_fitem arrays ~loop ~count fi =
  let open Build in
  match fi with
  | FLoad { esize; signed; dst; sym; perm = None } ->
      [ ld ~esize ~signed (sreg dst) sym (ri ind) ]
  | FLoad { esize; signed; dst; sym; perm = Some p } ->
      let off = offsets_sym arrays p ~count in
      [
        ld tmp off (ri ind);
        dp Opcode.Add tmp ind (ri tmp);
        ld ~esize ~signed (sreg dst) sym (ri tmp);
      ]
  | FStore { esize; src; sym; perm = None } ->
      [ st ~esize (sreg src) sym (ri ind) ]
  | FStore { esize; src; sym; perm = Some p } ->
      let off = offsets_sym arrays (Perm.inverse p) ~count in
      [
        ld tmp off (ri ind);
        dp Opcode.Add tmp ind (ri tmp);
        st ~esize (sreg src) sym (ri tmp);
      ]
  | FLoadS { esize; signed; dst; sym; stride; phase } ->
      let shift_amt = if stride = 2 then 1 else 2 in
      [ dp Opcode.Lsl tmp ind (i shift_amt) ]
      @ (if phase = 0 then [] else [ dp Opcode.Add tmp tmp (i phase) ])
      @ [ ld ~esize ~signed (sreg dst) sym (ri tmp) ]
  | FStoreS { esize; src; sym; stride; phase } ->
      let shift_amt = if stride = 2 then 1 else 2 in
      [ dp Opcode.Lsl tmp ind (i shift_amt) ]
      @ (if phase = 0 then [] else [ dp Opcode.Add tmp tmp (i phase) ])
      @ [ st ~esize (sreg src) sym (ri tmp) ]
  | FGather { esize; signed; dst; sym; index_v } ->
      [ ld ~esize ~signed (sreg dst) sym (ri (sreg index_v)) ]
  | FDp { op; dst; src1; src2 = VR r } -> [ dp op (sreg dst) (sreg src1) (ri (sreg r)) ]
  | FDp { op; dst; src1; src2 = VImm k } -> [ dp op (sreg dst) (sreg src1) (i k) ]
  | FDp { op; dst; src1; src2 = VConst a } ->
      let sym = const_sym arrays a ~loop ~count in
      [ ld tmp sym (ri ind); dp op (sreg dst) (sreg src1) (ri tmp) ]
  | FSat { op; esize; signed; dst; src1; src2 } ->
      let base_op = match op with `Add -> Opcode.Add | `Sub -> Opcode.Sub in
      let d = sreg dst in
      let base = [ dp base_op d (sreg src1) (ri (sreg src2)) ] in
      let clamp_hi b = [ cmp d (i b); movc Cond.Gt d b ] in
      let clamp_lo b = [ cmp d (i b); movc Cond.Lt d b ] in
      base
      @
      if signed then
        clamp_hi (Esize.max_signed esize) @ clamp_lo (Esize.min_signed esize)
      else (
        match op with
        | `Add -> clamp_hi (Esize.max_unsigned esize)
        | `Sub -> clamp_lo 0)
  | FRed { op; acc; src } -> [ dp op acc acc (ri (sreg src)) ]

let emit_loop_shell ~top_label ~count ~red_inits body =
  let open Build in
  List.map (fun (acc, init) -> mov acc init) red_inits
  @ [ mov ind 0; label top_label ]
  @ body
  @ [ addi ind ind 1; cmp ind (i count); b ~cond:Cond.Lt top_label ]

let scalarize ?max_scalar (loop : Vloop.t) =
  let arrays = arrays_create () in
  let seg_items = segment_items ?max_scalar loop arrays in
  (* Each accumulator is initialized in the first segment that reduces
     into it; re-initializing in a later segment would reset it. *)
  let assigned = Hashtbl.create 4 in
  let find_red_segment items =
    List.filter
      (fun (acc, _) ->
        (not (Hashtbl.mem assigned (Reg.index acc)))
        && List.exists
             (function FRed { acc = a; _ } -> Reg.equal a acc | _ -> false)
             items
        &&
        (Hashtbl.replace assigned (Reg.index acc) ();
         true))
      loop.Vloop.reductions
  in
  let segments =
    List.mapi
      (fun k items ->
        {
          label = Printf.sprintf "region_%s_%d" loop.Vloop.name k;
          items;
          red_inits = find_red_segment items;
        })
      seg_items
  in
  let count = loop.Vloop.count in
  let region_items =
    List.concat_map
      (fun seg ->
        let body =
          List.concat_map (emit_fitem arrays ~loop:loop.Vloop.name ~count) seg.items
        in
        (Build.label seg.label
        :: emit_loop_shell ~top_label:(seg.label ^ "_top") ~count
             ~red_inits:seg.red_inits body)
        @ [ Build.ret ])
      segments
  in
  let inline_items =
    List.concat_map
      (fun seg ->
        let body =
          List.concat_map (emit_fitem arrays ~loop:loop.Vloop.name ~count) seg.items
        in
        emit_loop_shell
          ~top_label:(seg.label ^ "_inl")
          ~count ~red_inits:seg.red_inits body)
      segments
  in
  let call_items = List.map (fun seg -> Build.bl_region seg.label) segments in
  let static_sizes =
    (* Instructions per outlined function: everything between its entry
       label and its return, inclusive (paper Table 5). *)
    let entry_labels = List.map (fun seg -> seg.label) segments in
    let rec count_regions acc current current_label = function
      | [] -> List.rev acc
      | Program.Label l :: rest when List.mem l entry_labels ->
          count_regions acc 0 (Some l) rest
      | Program.Label _ :: rest -> count_regions acc current current_label rest
      | Program.I (Minsn.S Insn.Ret) :: rest -> (
          match current_label with
          | Some l -> count_regions ((l, current + 1) :: acc) 0 None rest
          | None -> count_regions acc 0 None rest)
      | Program.I _ :: rest -> count_regions acc (current + 1) current_label rest
    in
    count_regions [] 0 None region_items
  in
  {
    segments;
    call_items;
    region_items;
    inline_items;
    data = List.rev arrays.data;
    static_sizes;
  }
