(** Whole-program code generation: the three binary flavours the paper's
    evaluation compares, produced from one IR program. *)

open Liquid_prog

exception Unsupported_width of string
(** Re-raised from {!Native_gen}: this loop cannot be expressed natively
    at the requested width (the forward-migration failure mode). *)

val liquid : Vloop.program -> Program.t
(** The Liquid SIMD binary: scalarized loops outlined behind region
    branch-and-links. Runs unmodified on any machine — scalar-only,
    translator-less, or any accelerator width. *)

val baseline : Vloop.program -> Program.t
(** The no-SIMD reference binary: the same scalarized loops, inline. *)

val native : width:int -> Vloop.program -> Program.t
(** A conventional SIMD binary for one specific accelerator width. *)

val outlined_sizes : Vloop.program -> (string * int) list
(** Static scalar instruction count of every outlined function the
    Liquid binary contains (paper Table 5). *)

val region_labels : Vloop.program -> string list
