(** Native SIMD code generation: the conventional, ISA-extension route
    the paper contrasts with Liquid SIMD. Each accelerator width gets its
    own binary; a width the loop's permutations or constants cannot be
    expressed at raises {!Unsupported_width} — precisely the forward
    migration problem delayed binding avoids. *)

open Liquid_prog

exception Unsupported_width of string

val loop_items : width:int -> data:Data.t list ref -> Vloop.t -> Program.item list
(** Inline native-SIMD realization of the loop at the given lane count.
    Generated constant arrays (for constant vectors whose period exceeds
    the width) are appended to [data]. *)
