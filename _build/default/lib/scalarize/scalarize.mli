(** SIMD-to-scalar conversion: the offline half of Liquid SIMD (paper §3).

    A vector loop is lowered to one or more scalar loops that process one
    element per iteration, following Table 1:

    - data-parallel operations map to their scalar opcode (category 1-2);
    - non-splattable constant vectors become read-only arrays indexed by
      the induction variable (category 3);
    - reductions become loop-carried scalar updates (category 4);
    - memory accesses use the induction variable with element-size
      scaling (categories 5-6);
    - permutations are folded into loads or stores through read-only
      offset arrays added to the induction variable (categories 7-8);
    - saturating operations, which have no scalar opcode, expand to the
      compare/predicated-move idiom of §3.2.

    A permutation that is neither adjacent to the load producing its
    source nor to the store consuming its result forces {e loop fission}
    (§3.4): the loop is split, live vector values travel through
    compiler-allocated temporary arrays, and the permutation folds into
    the reload. Loops whose scalar form would overflow the microcode
    buffer are split the same way (§5, "large loops ... broken up").

    The same segment list is emitted twice: outlined behind region
    branch-and-links for the Liquid binary, and inline for the baseline
    scalar binary. *)

open Liquid_isa
open Liquid_visa
open Liquid_prog

exception Error of string

(** A lowered loop-body item after permutation fusion. *)
type fitem =
  | FLoad of {
      esize : Esize.t;
      signed : bool;
      dst : Vreg.t;
      sym : string;
      perm : Perm.t option;
    }
  | FStore of {
      esize : Esize.t;
      src : Vreg.t;
      sym : string;
      perm : Perm.t option;
          (** the pattern applied to the value before it lands in
              memory; realized with offsets of the {e inverse} pattern *)
    }
  | FLoadS of {
      esize : Esize.t;
      signed : bool;
      dst : Vreg.t;
      sym : string;
      stride : int;
      phase : int;
    }
      (** {e Extension}: de-interleaving load (stride 2 or 4); realized
          as a scaled induction variable ([lsl] + optional phase add)
          feeding an element-indexed load. *)
  | FStoreS of {
      esize : Esize.t;
      src : Vreg.t;
      sym : string;
      stride : int;
      phase : int;
    }  (** Interleaving store, same addressing. *)
  | FGather of {
      esize : Esize.t;
      signed : bool;
      dst : Vreg.t;
      sym : string;
      index_v : Vreg.t;
    }
      (** {e Extension} ([VTBL]): a table lookup indexed by another
          vector register's lane values; one scalar load per element. *)
  | FDp of { op : Opcode.t; dst : Vreg.t; src1 : Vreg.t; src2 : Vinsn.vsrc }
  | FSat of {
      op : [ `Add | `Sub ];
      esize : Esize.t;
      signed : bool;
      dst : Vreg.t;
      src1 : Vreg.t;
      src2 : Vreg.t;
    }
  | FRed of { op : Opcode.t; acc : Reg.t; src : Vreg.t }

type segment = {
  label : string;  (** region entry label, [region_<loop>_<k>] *)
  items : fitem list;
  red_inits : (Reg.t * int) list;
}

type output = {
  segments : segment list;
  call_items : Program.item list;
      (** one region branch-and-link per segment, in order *)
  region_items : Program.item list;  (** the outlined functions *)
  inline_items : Program.item list;  (** baseline inline form *)
  data : Data.t list;  (** generated offset/constant/temporary arrays *)
  static_sizes : (string * int) list;
      (** scalar instructions per outlined function (paper Table 5) *)
}

val scalarize : ?max_scalar:int -> Vloop.t -> output
(** [max_scalar] bounds the scalar instruction count of one outlined
    function (default 56, leaving slack under the 64-entry microcode
    buffer). Raises {!Error} on IR that violates the conventions of
    {!Vloop.validate} or uses an undefined vector register. *)

val estimated_cost : fitem -> int
(** Scalar instructions the item expands to. *)
