open Liquid_isa
open Liquid_visa
open Liquid_prog

exception Unsupported_width of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported_width s)) fmt

let tile values width =
  let b = Array.length values in
  Array.init width (fun i -> values.(i mod b))

let temp_vreg = Vreg.make 13

let lower_vinsn ~width ~data ~loop ~count ~counter vi =
  match vi with
  | Vinsn.Vdp ({ src2 = VConst a; _ } as d) ->
      let b = Array.length a in
      if width mod b = 0 then [ Program.I (Minsn.V (Vinsn.Vdp { d with src2 = VConst (tile a width) })) ]
      else begin
        (* The constant's period exceeds the hardware width: keep it in
           memory and reload the relevant window each iteration. *)
        incr counter;
        let name = Printf.sprintf "vcnst_%s_%d" loop !counter in
        let full = Array.init count (fun e -> a.(e mod b)) in
        data := Data.make ~name ~esize:Esize.Word full :: !data;
        [
          Program.I
            (Minsn.V
               (Vinsn.Vld
                  {
                    esize = Esize.Word;
                    signed = true;
                    dst = temp_vreg;
                    base = Insn.Sym name;
                    index = Vloop.induction;
                  }));
          Program.I (Minsn.V (Vinsn.Vdp { d with src2 = VR temp_vreg }));
        ]
      end
  | Vinsn.Vperm { pattern; _ } ->
      if not (Perm.supported pattern ~lanes:width) then
        unsupported "permutation %a cannot execute on a %d-wide accelerator"
          Perm.pp pattern width;
      [ Program.I (Minsn.V vi) ]
  | Vinsn.Vld _ | Vinsn.Vst _ | Vinsn.Vlds _ | Vinsn.Vsts _ | Vinsn.Vgather _
  | Vinsn.Vdp _ | Vinsn.Vsat _ | Vinsn.Vred _ ->
      [ Program.I (Minsn.V vi) ]

let loop_items ~width ~data (loop : Vloop.t) =
  (match Vloop.validate loop with
  | Ok () -> ()
  | Error m -> raise (Unsupported_width m));
  if width < 2 || loop.Vloop.count mod width <> 0 then
    unsupported "%s: count %d not a multiple of width %d" loop.Vloop.name
      loop.Vloop.count width;
  let counter = ref 0 in
  let body =
    List.concat_map
      (lower_vinsn ~width ~data ~loop:loop.Vloop.name ~count:loop.Vloop.count
         ~counter)
      loop.Vloop.body
  in
  let open Build in
  let top = Printf.sprintf "%s_ntop" loop.Vloop.name in
  List.map (fun (acc, init) -> mov acc init) loop.Vloop.reductions
  @ [ mov Vloop.induction 0; label top ]
  @ body
  @ [
      addi Vloop.induction Vloop.induction width;
      cmp Vloop.induction (i loop.Vloop.count);
      b ~cond:Cond.Lt top;
    ]
