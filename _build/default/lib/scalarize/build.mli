(** Concise constructors for hand-writing programs against the IR.

    Scalar helpers build {!Liquid_prog.Program.item}s for glue code;
    vector helpers build {!Liquid_visa.Vinsn.asm}s for loop bodies. *)

open Liquid_isa
open Liquid_visa
open Liquid_prog

val r : int -> Reg.t
val v : int -> Vreg.t

(** {1 Scalar glue} *)

val label : string -> Program.item
val mov : Reg.t -> int -> Program.item
val movr : Reg.t -> Reg.t -> Program.item
val movc : Cond.t -> Reg.t -> int -> Program.item
val dp : Opcode.t -> Reg.t -> Reg.t -> Insn.operand -> Program.item
val addi : Reg.t -> Reg.t -> int -> Program.item
val subi : Reg.t -> Reg.t -> int -> Program.item

val ld : ?esize:Esize.t -> ?signed:bool -> Reg.t -> string -> Insn.operand -> Program.item
(** Element-indexed load: the index operand is scaled by the element
    size automatically. *)

val st : ?esize:Esize.t -> Reg.t -> string -> Insn.operand -> Program.item
val cmp : Reg.t -> Insn.operand -> Program.item
val b : ?cond:Cond.t -> string -> Program.item
val bl : string -> Program.item
val bl_region : string -> Program.item
val ret : Program.item
val halt : Program.item

val ri : Reg.t -> Insn.operand
val i : int -> Insn.operand

val counted_loop :
  name:string -> count:int -> ind:Reg.t -> Program.item list -> Program.item list
(** [counted_loop ~name ~count ~ind body] wraps [body] in
    [mov ind,#0; L: body; add ind,ind,#1; cmp ind,#count; blt L]. *)

(** {1 Vector loop bodies} *)

val vld : ?esize:Esize.t -> ?signed:bool -> Vreg.t -> string -> Vinsn.asm
val vst : ?esize:Esize.t -> Vreg.t -> string -> Vinsn.asm
val vdp : Opcode.t -> Vreg.t -> Vreg.t -> Vinsn.vsrc -> Vinsn.asm
val vadd : Vreg.t -> Vreg.t -> Vinsn.vsrc -> Vinsn.asm
val vsub : Vreg.t -> Vreg.t -> Vinsn.vsrc -> Vinsn.asm
val vmul : Vreg.t -> Vreg.t -> Vinsn.vsrc -> Vinsn.asm
val vand : Vreg.t -> Vreg.t -> Vinsn.vsrc -> Vinsn.asm
val vorr : Vreg.t -> Vreg.t -> Vinsn.vsrc -> Vinsn.asm
val veor : Vreg.t -> Vreg.t -> Vinsn.vsrc -> Vinsn.asm
val vmin : Vreg.t -> Vreg.t -> Vinsn.vsrc -> Vinsn.asm
val vmax : Vreg.t -> Vreg.t -> Vinsn.vsrc -> Vinsn.asm
val vshr : Vreg.t -> Vreg.t -> Vinsn.vsrc -> Vinsn.asm
val vshl : Vreg.t -> Vreg.t -> Vinsn.vsrc -> Vinsn.asm

val vqadd : ?esize:Esize.t -> ?signed:bool -> Vreg.t -> Vreg.t -> Vreg.t -> Vinsn.asm
val vqsub : ?esize:Esize.t -> ?signed:bool -> Vreg.t -> Vreg.t -> Vreg.t -> Vinsn.asm
val vlds :
  ?esize:Esize.t -> ?signed:bool -> stride:int -> phase:int -> Vreg.t -> string -> Vinsn.asm
(** {e Extension}: de-interleaving load — lane [i] reads element
    [stride * (ind + i) + phase]. *)

val vsts :
  ?esize:Esize.t -> stride:int -> phase:int -> Vreg.t -> string -> Vinsn.asm

val vld2 : ?esize:Esize.t -> ?signed:bool -> phase:int -> Vreg.t -> string -> Vinsn.asm
val vst2 : ?esize:Esize.t -> phase:int -> Vreg.t -> string -> Vinsn.asm

val vtbl : ?esize:Esize.t -> ?signed:bool -> Vreg.t -> string -> Vreg.t -> Vinsn.asm
(** {e Extension} ([VTBL]): [vtbl dst table idx] — lane [i] of [dst]
    reads element [idx.(i)] of [table]. *)

val vbfly : int -> Vreg.t -> Vreg.t -> Vinsn.asm
(** [vbfly b dst src]: half-swap butterfly over blocks of [b]. *)

val vrev : int -> Vreg.t -> Vreg.t -> Vinsn.asm
val vrot : block:int -> by:int -> Vreg.t -> Vreg.t -> Vinsn.asm
val vred : Opcode.t -> Reg.t -> Vreg.t -> Vinsn.asm

val vr : Vreg.t -> Vinsn.vsrc
val vi : int -> Vinsn.vsrc
val vc : int array -> Vinsn.vsrc
val vmask : int list -> Vinsn.vsrc
(** Lane-mask constant: one entry per lane of the pattern, [0] clears the
    lane, non-zero keeps it (encoded as all-ones words for use with
    [vand]). *)
