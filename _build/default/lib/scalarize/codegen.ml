open Liquid_prog

exception Unsupported_width of string

let validate (p : Vloop.program) =
  match Vloop.validate_program p with
  | Ok () -> ()
  | Error m -> raise (Scalarize.Error m)

let dedup_data data =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (d : Data.t) ->
      if Hashtbl.mem seen d.name then false
      else begin
        Hashtbl.replace seen d.name ();
        true
      end)
    data

let scalarized_outputs (p : Vloop.program) =
  List.map
    (function
      | Vloop.Code items -> `Code items
      | Vloop.Loop l -> `Loop (Scalarize.scalarize l))
    p.sections

let liquid (p : Vloop.program) =
  validate p;
  let outputs = scalarized_outputs p in
  let main =
    List.concat_map
      (function
        | `Code items -> items
        | `Loop (o : Scalarize.output) -> o.call_items)
      outputs
  in
  let regions =
    List.concat_map
      (function `Code _ -> [] | `Loop (o : Scalarize.output) -> o.region_items)
      outputs
  in
  let generated =
    List.concat_map
      (function `Code _ -> [] | `Loop (o : Scalarize.output) -> o.data)
      outputs
  in
  Program.make ~name:(p.name ^ ".liquid")
    ~text:((Program.Label "main" :: main) @ [ Build.halt ] @ regions)
    ~data:(dedup_data (p.data @ generated))

let baseline (p : Vloop.program) =
  validate p;
  let outputs = scalarized_outputs p in
  let main =
    List.concat_map
      (function
        | `Code items -> items
        | `Loop (o : Scalarize.output) -> o.inline_items)
      outputs
  in
  let generated =
    List.concat_map
      (function `Code _ -> [] | `Loop (o : Scalarize.output) -> o.data)
      outputs
  in
  Program.make ~name:(p.name ^ ".scalar")
    ~text:((Program.Label "main" :: main) @ [ Build.halt ])
    ~data:(dedup_data (p.data @ generated))

let native ~width (p : Vloop.program) =
  validate p;
  let data = ref [] in
  let main =
    try
      List.concat_map
        (function
          | Vloop.Code items -> items
          | Vloop.Loop l -> Native_gen.loop_items ~width ~data l)
        p.sections
    with Native_gen.Unsupported_width m -> raise (Unsupported_width m)
  in
  Program.make
    ~name:(Printf.sprintf "%s.native%d" p.name width)
    ~text:((Program.Label "main" :: main) @ [ Build.halt ])
    ~data:(dedup_data (p.data @ List.rev !data))

let outlined_sizes (p : Vloop.program) =
  List.concat_map
    (function
      | Vloop.Code _ -> []
      | Vloop.Loop l -> (Scalarize.scalarize l).static_sizes)
    p.sections

let region_labels (p : Vloop.program) =
  List.concat_map
    (function
      | Vloop.Code _ -> []
      | Vloop.Loop l ->
          List.map (fun (s : Scalarize.segment) -> s.label)
            (Scalarize.scalarize l).segments)
    p.sections
