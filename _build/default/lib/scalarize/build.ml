open Liquid_isa
open Liquid_visa
open Liquid_prog

let r = Reg.make
let v = Vreg.make
let label l = Program.Label l
let item insn = Program.I (Minsn.S insn)

let mov dst imm = item (Insn.Mov { cond = Cond.Al; dst; src = Imm imm })
let movr dst src = item (Insn.Mov { cond = Cond.Al; dst; src = Reg src })
let movc cond dst imm = item (Insn.Mov { cond; dst; src = Imm imm })
let dp op dst src1 src2 = item (Insn.Dp { cond = Cond.Al; op; dst; src1; src2 })
let addi dst src1 k = dp Opcode.Add dst src1 (Imm k)
let subi dst src1 k = dp Opcode.Sub dst src1 (Imm k)

let ld ?(esize = Esize.Word) ?(signed = true) dst sym index =
  item
    (Insn.Ld
       {
         esize;
         signed;
         dst;
         base = Sym sym;
         index;
         shift = Esize.shift esize;
       })

let st ?(esize = Esize.Word) src sym index =
  item (Insn.St { esize; src; base = Sym sym; index; shift = Esize.shift esize })

let cmp src1 src2 = item (Insn.Cmp { src1; src2 })
let b ?(cond = Cond.Al) target = item (Insn.B { cond; target })
let bl target = item (Insn.Bl { target; region = false })
let bl_region target = item (Insn.Bl { target; region = true })
let ret = item Insn.Ret
let halt = item Insn.Halt
let ri reg = Insn.Reg reg
let i k = Insn.Imm k

let counted_loop ~name ~count ~ind body =
  [ mov ind 0; label name ]
  @ body
  @ [ addi ind ind 1; cmp ind (Insn.Imm count); b ~cond:Cond.Lt name ]

let vld ?(esize = Esize.Word) ?(signed = true) dst sym =
  Vinsn.Vld { esize; signed; dst; base = Sym sym; index = Reg.make 0 }

let vst ?(esize = Esize.Word) src sym =
  Vinsn.Vst { esize; src; base = Sym sym; index = Reg.make 0 }

let vdp op dst src1 src2 = Vinsn.Vdp { op; dst; src1; src2 }
let vadd d a b = vdp Opcode.Add d a b
let vsub d a b = vdp Opcode.Sub d a b
let vmul d a b = vdp Opcode.Mul d a b
let vand d a b = vdp Opcode.And d a b
let vorr d a b = vdp Opcode.Orr d a b
let veor d a b = vdp Opcode.Eor d a b
let vmin d a b = vdp Opcode.Smin d a b
let vmax d a b = vdp Opcode.Smax d a b
let vshr d a b = vdp Opcode.Asr d a b
let vshl d a b = vdp Opcode.Lsl d a b

let vqadd ?(esize = Esize.Byte) ?(signed = false) dst src1 src2 =
  Vinsn.Vsat { op = `Add; esize; signed; dst; src1; src2 }

let vqsub ?(esize = Esize.Byte) ?(signed = false) dst src1 src2 =
  Vinsn.Vsat { op = `Sub; esize; signed; dst; src1; src2 }

let vlds ?(esize = Esize.Word) ?(signed = true) ~stride ~phase dst sym =
  Vinsn.Vlds
    { esize; signed; dst; base = Sym sym; index = Reg.make 0; stride; phase }

let vsts ?(esize = Esize.Word) ~stride ~phase src sym =
  Vinsn.Vsts
    { esize; src; base = Sym sym; index = Reg.make 0; stride; phase }

let vld2 ?esize ?signed ~phase dst sym = vlds ?esize ?signed ~stride:2 ~phase dst sym
let vst2 ?esize ~phase src sym = vsts ?esize ~stride:2 ~phase src sym

let vtbl ?(esize = Esize.Word) ?(signed = true) dst table index_v =
  Vinsn.Vgather { esize; signed; dst; base = Sym table; index_v }

let vbfly b dst src = Vinsn.Vperm { pattern = Perm.Halfswap b; dst; src }
let vrev b dst src = Vinsn.Vperm { pattern = Perm.Reverse b; dst; src }
let vrot ~block ~by dst src = Vinsn.Vperm { pattern = Perm.Rotate { block; by }; dst; src }
let vred op acc src = Vinsn.Vred { op; acc; src }
let vr reg = Vinsn.VR reg
let vi k = Vinsn.VImm k
let vc a = Vinsn.VConst a

let vmask lanes =
  Vinsn.VConst (Array.of_list (List.map (fun x -> if x = 0 then 0 else -1) lanes))
