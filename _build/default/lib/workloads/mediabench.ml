(* MediaBench: MPEG2 decode/encode and GSM decode/encode. The MPEG2 hot
   loops operate on 8-element blocks, which is why the paper sees no
   gain from 8-wide to 16-wide accelerators there; the block loops also
   produce the only sub-300-cycle call gaps in Table 6. *)

open Liquid_isa
open Liquid_visa
open Liquid_scalarize
open Kernels
open Build

let paper ~mean ~max ~lt150 ~lt300 ~gt300 ~gap =
  {
    Meta.table5_mean = mean;
    table5_max = max;
    table6_lt150 = lt150;
    table6_lt300 = lt300;
    table6_gt300 = gt300;
    table6_mean = gap;
  }

(* --- MPEG2 decode: dequantize + motion-compensate, per 8-pixel block --- *)

let mpeg2_dec () =
  let dequant =
    {
      Vloop.name = "m2d_deq";
      count = 8;
      body =
        [
          vld (v 1) "coef";
          vmul (v 1) (v 1) (vi 11);
          vshr (v 1) (v 1) (vi 4);
          vadd (v 1) (v 1) (vi 1);
          vmin (v 1) (v 1) (vi 2047);
          vmax (v 1) (v 1) (vi (-2048));
          vst (v 1) "block";
        ];
      reductions = [];
    }
  in
  let motion =
    {
      Vloop.name = "m2d_mc";
      count = 8;
      body =
        [
          vld ~esize:Esize.Byte ~signed:false (v 1) "refpix";
          vld ~esize:Esize.Byte ~signed:false (v 2) "delta";
          vand (v 2) (v 2) (vi 127);
          Vinsn.Vsat
            {
              op = `Add;
              esize = Esize.Byte;
              signed = false;
              dst = v 1;
              src1 = v 1;
              src2 = v 2;
            };
          vst ~esize:Esize.Byte (v 1) "outpix";
        ];
      reductions = [];
    }
  in
  {
    Meta.name = "MPEG2 Dec.";
    suite = Meta.Mediabench;
    description = "dequantization and saturating motion compensation on 8-pixel blocks";
    program =
      {
        Vloop.name = "mpeg2dec";
        sections =
          counted ~reg:(r 15) ~label:"m2d_frame" ~count:5
            ((* Bitstream parsing: the scalar fraction that bounds MPEG2
                speedups in the paper's Figure 6. *)
             busy ~label:"m2d_parse" ~iters:500 ~stride:1 ~sym:"coef"
             ::
             counted ~reg:(r 12) ~label:"m2d_blk" ~count:16
               [ Vloop.Loop dequant; Vloop.Loop motion ]);
        data =
          [
            warray "coef" 8 (fun i -> (i * 37 mod 255) - 128);
            wzeros "block" 8;
            barray "refpix" 8 (fun i -> (i * 29) mod 256);
            barray "delta" 8 (fun i -> (i * 53) mod 256);
            bzeros "outpix" 8;
          ];
      };
    paper = paper ~mean:12.5 ~max:13 ~lt150:0 ~lt300:1 ~gt300:1 ~gap:269;
  }

(* --- MPEG2 encode: SAD, prediction blend and quantize per block, plus
   a frame-level rate-control loop --- *)

let mpeg2_enc () =
  let sad =
    {
      Vloop.name = "m2e_sad";
      count = 8;
      body =
        [
          vld (v 1) "cur";
          vld (v 2) "refw";
          vsub (v 1) (v 1) (vr (v 2));
          vmul (v 1) (v 1) (vr (v 1));
          vred Opcode.Add (r 10) (v 1);
        ];
      reductions = [ (r 10, 0) ];
    }
  in
  let blend =
    blend_sat ~name:"m2e_blend" ~count:8 ~esize:Esize.Byte ~signed:false
      ~a:"refpix" ~b:"predpix" ~out:"mixpix"
  in
  let quant =
    {
      Vloop.name = "m2e_quant";
      count = 8;
      body =
        [
          vld (v 1) "cur";
          vmul (v 1) (v 1) (vi 7);
          vshr (v 1) (v 1) (vi 5);
          vmin (v 1) (v 1) (vi 255);
          vmax (v 1) (v 1) (vi (-255));
          vst (v 1) "qcoef";
        ];
      reductions = [];
    }
  in
  let rate =
    mac_chain ~name:"m2e_rate" ~count:256
      ~terms:[ ("hist", 3); ("hist2", 5); ("hist3", 2); ("hist4", 4) ]
      ~out:"rc"
  in
  {
    Meta.name = "MPEG2 Enc.";
    suite = Meta.Mediabench;
    description = "block SAD/blend/quantize plus a frame-level rate-control MAC";
    program =
      {
        Vloop.name = "mpeg2enc";
        sections =
          counted ~reg:(r 15) ~label:"m2e_frame" ~count:5
            ((* The bitstream parse touches the block buffers before the
                per-block loops run, so their first calls see warm
                lines. *)
             busy ~label:"m2e_warm" ~iters:56 ~stride:1 ~sym:"cur"
             :: busy ~label:"m2e_parse" ~iters:400 ~stride:1 ~sym:"hist"
             ::
             counted ~reg:(r 12) ~label:"m2e_blk" ~count:12
               [ Vloop.Loop sad; Vloop.Loop blend; Vloop.Loop quant ]
            @ [ Vloop.Loop rate ]);
        data =
          [
            warray "cur" 8 (fun i -> (i * 41 mod 200) - 100);
            warray "refw" 8 (fun i -> (i * 13 mod 180) - 90);
            barray "refpix" 8 (fun i -> (i * 71) mod 256);
            barray "predpix" 8 (fun i -> (i * 31) mod 256);
            bzeros "mixpix" 8;
            wzeros "qcoef" 8;
            warray "hist" 256 (fun i -> i mod 23);
            warray "hist2" 256 (fun i -> (i * 3) mod 29);
            warray "hist3" 256 (fun i -> (i * 7) mod 31);
            warray "hist4" 256 (fun i -> (i * 5) mod 37);
            wzeros "rc" 256;
          ];
      };
    paper = paper ~mean:14.5 ~max:19 ~lt150:0 ~lt300:3 ~gt300:1 ~gap:257;
  }

(* --- GSM decode: long-term-prediction synthesis filter --- *)

let gsm_dec () =
  let ltp =
    {
      Vloop.name = "gsd_ltp";
      count = 40;
      body =
        [
          vld ~esize:Esize.Half ~signed:true (v 1) "exc";
          vmul (v 1) (v 1) (vi 19);
          vshr (v 1) (v 1) (vi 6);
          vld ~esize:Esize.Half ~signed:true (v 2) "hist_h";
          vmul (v 2) (v 2) (vi 7);
          vshr (v 2) (v 2) (vi 5);
          vadd (v 1) (v 1) (vr (v 2));
          vld ~esize:Esize.Half ~signed:true (v 3) "speech";
          Vinsn.Vsat
            {
              op = `Add;
              esize = Esize.Half;
              signed = true;
              dst = v 1;
              src1 = v 1;
              src2 = v 3;
            };
          vmin (v 1) (v 1) (vi 32000);
          vst ~esize:Esize.Half (v 1) "speech";
        ];
      reductions = [];
    }
  in
  {
    Meta.name = "GSM Dec.";
    suite = Meta.Mediabench;
    description = "long-term-prediction synthesis with saturating accumulate";
    program =
      {
        Vloop.name = "gsmdec";
        sections =
          counted ~reg:(r 15) ~label:"gsd_frame" ~count:12
            [
              busy ~label:"gsd_glue" ~iters:55 ~stride:1 ~sym:"exc";
              Vloop.Loop ltp;
            ];
        data =
          [
            harray "exc" 40 (fun i -> (i * 97 mod 4001) - 2000);
            harray "hist_h" 40 (fun i -> (i * 61 mod 3001) - 1500);
            harray "speech" 40 (fun i -> (i * 13 mod 2001) - 1000);
          ];
      };
    paper = paper ~mean:25.0 ~max:25 ~lt150:0 ~lt300:0 ~gt300:1 ~gap:358;
  }

(* --- GSM encode: correlation search plus preprocessing scale --- *)

let gsm_enc () =
  let corr =
    {
      Vloop.name = "gse_corr";
      count = 40;
      body =
        [
          vld ~esize:Esize.Half ~signed:true (v 1) "wt";
          vld ~esize:Esize.Half ~signed:true (v 2) "dp";
          vmul (v 3) (v 1) (vr (v 2));
          vred Opcode.Add (r 10) (v 3);
          vld ~esize:Esize.Half ~signed:true (v 4) "dp2";
          vmul (v 5) (v 1) (vr (v 4));
          vred Opcode.Add (r 11) (v 5);
          vmul (v 6) (v 2) (vr (v 2));
          vred Opcode.Smax (r 9) (v 6);
        ];
      reductions = [ (r 10, 0); (r 11, 0); (r 9, 0) ];
    }
  in
  let preproc =
    sat_mac ~name:"gse_pre" ~count:40 ~esize:Esize.Half ~x:"so" ~y:"sof"
      ~scale:29 ~out:"sof"
  in
  {
    Meta.name = "GSM Enc.";
    suite = Meta.Mediabench;
    description = "LTP correlation search and saturating preprocessing filter";
    program =
      {
        Vloop.name = "gsmenc";
        sections =
          counted ~reg:(r 15) ~label:"gse_frame" ~count:12
            [
              busy ~label:"gse_glue" ~iters:50 ~stride:1 ~sym:"so";
              Vloop.Loop corr;
              Vloop.Loop preproc;
            ];
        data =
          [
            harray "wt" 40 (fun i -> (i * 89 mod 3001) - 1500);
            harray "dp" 40 (fun i -> (i * 43 mod 2501) - 1250);
            harray "dp2" 40 (fun i -> (i * 71 mod 2201) - 1100);
            harray "so" 40 (fun i -> (i * 37 mod 4001) - 2000);
            harray "sof" 40 (fun i -> (i * 17 mod 1001) - 500);
          ];
      };
    paper = paper ~mean:19.5 ~max:28 ~lt150:0 ~lt300:0 ~gt300:1 ~gap:538;
  }

let benchmarks () = [ mpeg2_dec (); mpeg2_enc (); gsm_dec (); gsm_enc () ]
