open Liquid_isa
open Liquid_visa
open Liquid_prog
open Liquid_scalarize
open Build

let warray name n f = Data.make ~name ~esize:Esize.Word (Array.init n f)
let barray name n f = Data.make ~name ~esize:Esize.Byte (Array.init n f)
let harray name n f = Data.make ~name ~esize:Esize.Half (Array.init n f)
let wzeros name n = Data.zeros ~name ~esize:Esize.Word n
let bzeros name n = Data.zeros ~name ~esize:Esize.Byte n

let counted ~reg ~label:l ~count sections =
  if not (Reg.equal reg (r 12) || Reg.equal reg (r 15)) then
    invalid_arg "Kernels.counted: only r12 and r15 survive loop execution";
  (Vloop.Code [ mov reg 0; label l ] :: sections)
  @ [
      Vloop.Code
        [ addi reg reg 1; cmp reg (i count); b ~cond:Cond.Lt l ];
    ]

let busy ~label:l ~iters ~stride ~sym =
  Vloop.Code
    ([ mov (r 1) 0; mov (r 2) 0; label l ]
    @ [
        ld (r 3) sym (ri (r 1));
        dp Opcode.Add (r 2) (r 2) (ri (r 3));
        addi (r 1) (r 1) stride;
        cmp (r 1) (i (iters * stride));
        b ~cond:Cond.Lt l;
      ])

let saxpy ~name ~count ~a ~x ~y ~out =
  {
    Vloop.name;
    count;
    body =
      [
        vld (v 1) x;
        vmul (v 1) (v 1) (vi a);
        vld (v 2) y;
        vadd (v 1) (v 1) (vr (v 2));
        vst (v 1) out;
      ];
    reductions = [];
  }

let dot ~name ~count ~x ~y ~acc =
  {
    Vloop.name;
    count;
    body =
      [ vld (v 1) x; vld (v 2) y; vmul (v 1) (v 1) (vr (v 2)); vred Opcode.Add acc (v 1) ];
    reductions = [ (acc, 0) ];
  }

let mac_chain ~name ~count ~terms ~out =
  match terms with
  | [] -> invalid_arg "Kernels.mac_chain: no terms"
  | (x0, c0) :: rest ->
      let head = [ vld (v 1) x0; vmul (v 1) (v 1) (vi c0) ] in
      let tail =
        List.concat_map
          (fun (xj, cj) ->
            [ vld (v 2) xj; vmul (v 2) (v 2) (vi cj); vadd (v 1) (v 1) (vr (v 2)) ])
          rest
      in
      {
        Vloop.name;
        count;
        body = head @ tail @ [ vst (v 1) out ];
        reductions = [];
      }

let stencil3 ~name ~count ~block ~src ~out ~coeffs:(c0, c1, c2) ~shift =
  {
    Vloop.name;
    count;
    body =
      [
        vld (v 1) src;
        vld (v 2) src;
        vrot ~block ~by:1 (v 2) (v 2);
        vld (v 3) src;
        vrot ~block ~by:(block - 1) (v 3) (v 3);
        vmul (v 1) (v 1) (vi c0);
        vmul (v 2) (v 2) (vi c1);
        vmul (v 3) (v 3) (vi c2);
        vadd (v 1) (v 1) (vr (v 2));
        vadd (v 1) (v 1) (vr (v 3));
        vshr (v 1) (v 1) (vi shift);
        vst (v 1) out;
      ];
    reductions = [];
  }

let blend_sat ~name ~count ~esize ~signed ~a ~b ~out =
  {
    Vloop.name;
    count;
    body =
      [
        vld ~esize ~signed (v 1) a;
        vld ~esize ~signed (v 2) b;
        Vinsn.Vsat { op = `Add; esize; signed; dst = v 1; src1 = v 1; src2 = v 2 };
        vst ~esize (v 1) out;
      ];
    reductions = [];
  }

let scale_clip ~name ~count ~src ~out ~mul ~shift ~lo ~hi =
  {
    Vloop.name;
    count;
    body =
      [
        vld (v 1) src;
        vmul (v 1) (v 1) (vi mul);
        vshr (v 1) (v 1) (vi shift);
        vmin (v 1) (v 1) (vi hi);
        vmax (v 1) (v 1) (vi lo);
        vst (v 1) out;
      ];
    reductions = [];
  }

let masked_merge ~name ~count ~block ~a ~b ~out =
  let m = List.init block (fun i -> if i < block / 2 then 1 else 0) in
  let m' = List.init block (fun i -> if i < block / 2 then 0 else 1) in
  {
    Vloop.name;
    count;
    body =
      [
        vld (v 1) a;
        vld (v 2) b;
        vand (v 1) (v 1) (vmask m);
        vand (v 2) (v 2) (vmask m');
        vorr (v 1) (v 1) (vr (v 2));
        vst (v 1) out;
      ];
    reductions = [];
  }

let max_energy ~name ~count ~src ~acc =
  {
    Vloop.name;
    count;
    body =
      [ vld (v 1) src; vmul (v 1) (v 1) (vr (v 1)); vred Opcode.Smax acc (v 1) ];
    reductions = [ (acc, -1073741824) ];
  }

let sat_mac ~name ~count ~esize ~x ~y ~scale ~out =
  {
    Vloop.name;
    count;
    body =
      [
        vld ~esize ~signed:true (v 1) x;
        vmul (v 1) (v 1) (vi scale);
        vshr (v 1) (v 1) (vi 6);
        vld ~esize ~signed:true (v 2) y;
        Vinsn.Vsat
          { op = `Add; esize; signed = true; dst = v 1; src1 = v 1; src2 = v 2 };
        vst ~esize (v 1) out;
      ];
    reductions = [];
  }

let fft_stage ~name ~count ~block ~re ~im ~wr ~wi =
  let half = block / 2 in
  let mask_lo = List.init block (fun i -> if i < half then 1 else 0) in
  let mask_hi = List.init block (fun i -> if i < half then 0 else 1) in
  {
    Vloop.name;
    count;
    body =
      [
        vld (v 1) re;
        vbfly block (v 1) (v 1);
        vld (v 2) im;
        vbfly block (v 2) (v 2);
        vld (v 3) wr;
        vld (v 4) wi;
        vmul (v 3) (v 3) (vr (v 1));
        vmul (v 4) (v 4) (vr (v 2));
        vsub (v 6) (v 3) (vr (v 4));
        vld (v 5) re;
        vsub (v 7) (v 5) (vr (v 6));
        vadd (v 8) (v 5) (vr (v 6));
        vand (v 7) (v 7) (vmask mask_hi);
        vbfly block (v 7) (v 7);
        vand (v 8) (v 8) (vmask mask_lo);
        vorr (v 9) (v 7) (vr (v 8));
        vst (v 9) re;
      ];
    reductions = [];
  }
