(** MediaBench: MPEG2 decode/encode and GSM decode/encode. The MPEG2 hot
    loops operate on 8-element blocks (flat speedup past 8 lanes, and
    the only sub-300-cycle call gaps of Table 6); the GSM codecs use
    saturating arithmetic over 40-sample subframes. *)

val benchmarks : unit -> Meta.t list
(** MPEG2 Dec., MPEG2 Enc., GSM Dec., GSM Enc. *)
