type suite = Meta.suite = Specfp | Mediabench | Kernel

type paper_ref = Meta.paper_ref = {
  table5_mean : float;
  table5_max : int;
  table6_lt150 : int;
  table6_lt300 : int;
  table6_gt300 : int;
  table6_mean : int;
}

type t = Meta.t = {
  name : string;
  suite : suite;
  description : string;
  program : Liquid_scalarize.Vloop.program;
  paper : paper_ref;
}

let all () = Spec_fp.benchmarks () @ Mediabench.benchmarks () @ Dsp.benchmarks ()
let find name = List.find_opt (fun w -> w.name = name) (all ())
let names () = List.map (fun w -> w.name) (all ())

let suite_name = function
  | Specfp -> "SPECfp"
  | Mediabench -> "MediaBench"
  | Kernel -> "Kernels"
