(* The eight SPEC floating-point benchmarks of the paper's evaluation,
   rebuilt as synthetic fixed-point workloads with the same hot-loop
   structure (loop counts and sizes per Tables 5-6). *)

open Liquid_isa
open Liquid_scalarize
open Kernels
open Build

let paper ~mean ~max ~lt150 ~lt300 ~gt300 ~gap =
  {
    Meta.table5_mean = mean;
    table5_max = max;
    table6_lt150 = lt150;
    table6_lt300 = lt300;
    table6_gt300 = gt300;
    table6_mean = gap;
  }

(* A multiply-accumulate chain over [terms] of the shared array pool —
   the dominant loop shape in scientific code. Coefficients vary with
   the seed so loops are not identical. *)
let pool_mac ~name ~count ~terms ~seed ~out =
  let term j = (Printf.sprintf "g%d" ((seed + j) mod 8), 1 + ((seed + (3 * j)) mod 7)) in
  mac_chain ~name ~count ~terms:(List.init terms term) ~out

let grid_data ~count =
  List.init 8 (fun k ->
      warray (Printf.sprintf "g%d" k) count (fun i ->
          ((i * (k + 3)) mod 251) - (k * 17)))

(* --- 052.alvinn: neural-net training; two small MAC/update loops --- *)

let alvinn () =
  let count = 512 in
  let fwd =
    {
      Vloop.name = "alv_fwd";
      count;
      body =
        [
          vld (v 1) "in_act";
          vld (v 2) "w_ih";
          vmul (v 3) (v 1) (vr (v 2));
          vred Opcode.Add (r 10) (v 3);
          vld (v 4) "w_ho";
          vmul (v 5) (v 1) (vr (v 4));
          vred Opcode.Add (r 11) (v 5);
        ];
      reductions = [ (r 10, 0); (r 11, 0) ];
    }
  in
  let update =
    {
      Vloop.name = "alv_upd";
      count;
      body =
        [
          vld (v 1) "delta";
          vmul (v 1) (v 1) (vi 3);
          vld (v 2) "w_ih";
          vadd (v 1) (v 1) (vr (v 2));
          vmin (v 1) (v 1) (vi 4096);
          vmax (v 1) (v 1) (vi (-4096));
          vst (v 1) "w_ih";
        ];
      reductions = [];
    }
  in
  {
    Meta.name = "052.alvinn";
    suite = Meta.Specfp;
    description = "neural-net training: forward MAC reduction + clipped weight update";
    program =
      {
        Vloop.name = "alvinn";
        sections =
          counted ~reg:(r 15) ~label:"alv_frame" ~count:12
            [
              busy ~label:"alv_glue" ~iters:1500 ~stride:1 ~sym:"in_act";
              Vloop.Loop fwd;
              Vloop.Loop update;
            ];
        data =
          [
            warray "in_act" count (fun i -> (i * 5 mod 127) - 60);
            warray "w_ih" count (fun i -> (i * 11 mod 97) - 48);
            warray "w_ho" count (fun i -> (i * 7 mod 89) - 44);
            warray "delta" count (fun i -> (i mod 17) - 8);
          ];
      };
    paper = paper ~mean:12.5 ~max:13 ~lt150:0 ~lt300:0 ~gt300:2 ~gap:19984;
  }

(* --- 056.ear: cochlear filterbank; three wide MAC loops --- *)

let ear () =
  let count = 512 in
  let fb k terms =
    pool_mac
      ~name:(Printf.sprintf "ear_fb%d" k)
      ~count ~terms ~seed:k
      ~out:(Printf.sprintf "g%d" (7 - k))
  in
  {
    Meta.name = "056.ear";
    suite = Meta.Specfp;
    description = "auditory filterbank: three long multiply-accumulate chains";
    program =
      {
        Vloop.name = "ear";
        sections =
          counted ~reg:(r 15) ~label:"ear_frame" ~count:10
            [
              busy ~label:"ear_glue" ~iters:2500 ~stride:1 ~sym:"g0";
              Vloop.Loop (fb 1 10);
              Vloop.Loop (fb 2 10);
              Vloop.Loop (fb 3 9);
            ];
        data = grid_data ~count;
      };
    paper = paper ~mean:34.5 ~max:36 ~lt150:0 ~lt300:0 ~gt300:3 ~gap:96488;
  }

(* --- 093.nasa7: seven numeric kernels; twelve large loops --- *)

let nasa7 () =
  let count = 256 in
  let terms = [ 13; 14; 15; 12; 14; 13; 18; 15; 14; 12; 13; 16 ] in
  let loops =
    List.mapi
      (fun k t ->
        Vloop.Loop
          (pool_mac
             ~name:(Printf.sprintf "nas_k%d" k)
             ~count ~terms:t ~seed:k
             ~out:(Printf.sprintf "g%d" (k mod 8))))
      terms
  in
  (* Each of the seven-kernel collection's loops iterates to
     convergence before the next starts, so the microcode-cache working
     set stays small even though there are twelve hot loops. *)
  let phased =
    List.concat
      (List.mapi
         (fun k loop ->
           counted ~reg:(r 12)
             ~label:(Printf.sprintf "nas_rep%d" k)
             ~count:12 [ loop ])
         loops)
  in
  {
    Meta.name = "093.nasa7";
    suite = Meta.Specfp;
    description = "NASA numeric kernel collection: twelve large MAC loops";
    program =
      {
        Vloop.name = "nasa7";
        sections =
          busy ~label:"nas_glue" ~iters:400 ~stride:1 ~sym:"g0" :: phased;
        data = grid_data ~count;
      };
    paper = paper ~mean:45.5 ~max:59 ~lt150:0 ~lt300:0 ~gt300:12 ~gap:23876;
  }

(* --- 101.tomcatv: mesh generation; includes a loop large enough that
   the compiler must fission it to fit the microcode buffer --- *)

let tomcatv () =
  let count = 128 in
  let big =
    pool_mac ~name:"tom_big" ~count ~terms:20 ~seed:5 ~out:"g6"
  in
  let loops =
    [
      Vloop.Loop (pool_mac ~name:"tom_rx" ~count ~terms:10 ~seed:0 ~out:"g0");
      Vloop.Loop (pool_mac ~name:"tom_ry" ~count ~terms:11 ~seed:1 ~out:"g1");
      Vloop.Loop big;
      Vloop.Loop
        (stencil3 ~name:"tom_relax" ~count ~block:8 ~src:"g2" ~out:"g3"
           ~coeffs:(1, 2, 1) ~shift:2);
      Vloop.Loop (pool_mac ~name:"tom_err" ~count ~terms:9 ~seed:3 ~out:"g4");
    ]
  in
  {
    Meta.name = "101.tomcatv";
    suite = Meta.Specfp;
    description = "vectorized mesh generation; one loop fissioned for buffer size";
    program =
      {
        Vloop.name = "tomcatv";
        sections =
          counted ~reg:(r 15) ~label:"tom_frame" ~count:10
            (busy ~label:"tom_glue" ~iters:600 ~stride:1 ~sym:"g0" :: loops);
        data = grid_data ~count;
      };
    paper = paper ~mean:35.5 ~max:61 ~lt150:0 ~lt300:0 ~gt300:6 ~gap:16036;
  }

(* --- 104.hydro2d: hydrodynamics; eighteen mid-size loops --- *)

let hydro2d () =
  let count = 256 in
  let terms = [ 7; 8; 9; 6; 10; 7; 8; 11; 6; 9; 7; 8; 10; 6; 9; 8 ] in
  let macs =
    List.mapi
      (fun k t ->
        Vloop.Loop
          (pool_mac
             ~name:(Printf.sprintf "hyd_k%d" k)
             ~count ~terms:t ~seed:(k + 2)
             ~out:(Printf.sprintf "g%d" ((k + 3) mod 8))))
      terms
  in
  let extra =
    [
      Vloop.Loop
        (masked_merge ~name:"hyd_bound" ~count ~block:8 ~a:"g1" ~b:"g2" ~out:"g3");
      Vloop.Loop
        (stencil3 ~name:"hyd_flux" ~count ~block:4 ~src:"g4" ~out:"g5"
           ~coeffs:(1, 6, 1) ~shift:3);
    ]
  in
  (* Dimensional splitting applies each sweep several times per
     timestep, keeping the hot working set to a handful of loops. *)
  let phased =
    List.concat
      (List.mapi
         (fun k loop ->
           counted ~reg:(r 12)
             ~label:(Printf.sprintf "hyd_rep%d" k)
             ~count:12 [ loop ])
         (macs @ extra))
  in
  {
    Meta.name = "104.hydro2d";
    suite = Meta.Specfp;
    description = "Navier-Stokes hydrodynamics: eighteen galaxy-of-loops kernels";
    program =
      {
        Vloop.name = "hydro2d";
        sections =
          busy ~label:"hyd_glue" ~iters:500 ~stride:1 ~sym:"g0" :: phased;
        data = grid_data ~count;
      };
    paper = paper ~mean:27.2 ~max:40 ~lt150:0 ~lt300:0 ~gt300:18 ~gap:24346;
  }

(* --- 171.swim: shallow-water stencils; nine loops --- *)

let swim () =
  let count = 256 in
  let terms = [ 11; 12; 10; 13; 11; 15; 10 ] in
  let macs =
    List.mapi
      (fun k t ->
        Vloop.Loop
          (pool_mac
             ~name:(Printf.sprintf "swm_k%d" k)
             ~count ~terms:t ~seed:(k + 1)
             ~out:(Printf.sprintf "g%d" ((k + 5) mod 8))))
      terms
  in
  let stencils =
    [
      Vloop.Loop
        (stencil3 ~name:"swm_u" ~count ~block:8 ~src:"g0" ~out:"g1"
           ~coeffs:(3, 10, 3) ~shift:4);
      Vloop.Loop
        (stencil3 ~name:"swm_v" ~count ~block:8 ~src:"g2" ~out:"g3"
           ~coeffs:(1, 14, 1) ~shift:4);
    ]
  in
  let phased =
    List.concat
      (List.mapi
         (fun k loop ->
           counted ~reg:(r 12)
             ~label:(Printf.sprintf "swm_rep%d" k)
             ~count:12 [ loop ])
         (macs @ stencils))
  in
  {
    Meta.name = "171.swim";
    suite = Meta.Specfp;
    description = "shallow-water model: stencil updates over staggered grids";
    program =
      {
        Vloop.name = "swim";
        sections =
          busy ~label:"swm_glue" ~iters:700 ~stride:1 ~sym:"g1" :: phased;
        data = grid_data ~count;
      };
    paper = paper ~mean:37.8 ~max:51 ~lt150:0 ~lt300:0 ~gt300:9 ~gap:33258;
  }

(* --- 172.mgrid: multigrid solver; thirteen loops re-run across levels,
   giving the shortest call gaps of the SPEC set --- *)

let mgrid () =
  let count = 128 in
  let terms = [ 13; 14; 15; 13; 16; 14; 18; 15; 13; 14; 16; 13 ] in
  let loops =
    List.mapi
      (fun k t ->
        Vloop.Loop
          (pool_mac
             ~name:(Printf.sprintf "mgr_k%d" k)
             ~count ~terms:t ~seed:(k + 4)
             ~out:(Printf.sprintf "g%d" ((k + 1) mod 8))))
      terms
    @ [
        Vloop.Loop
          (stencil3 ~name:"mgr_sm" ~count ~block:8 ~src:"g6" ~out:"g7"
             ~coeffs:(1, 4, 1) ~shift:3);
      ]
  in
  (* Multigrid applies each smoother twice per level (pre- and
     post-smoothing), so a region's second call follows after one loop
     duration — the shortest gaps in the SPEC set. *)
  let repeated =
    List.concat
      (List.mapi
         (fun k loop ->
           counted ~reg:(r 12)
             ~label:(Printf.sprintf "mgr_rep%d" k)
             ~count:12 [ loop ])
         loops)
  in
  {
    Meta.name = "172.mgrid";
    suite = Meta.Specfp;
    description = "multigrid V-cycle: thirteen smoothing loops applied twice per level";
    program =
      {
        Vloop.name = "mgrid";
        sections = repeated;
        data = grid_data ~count;
      };
    paper = paper ~mean:46.2 ~max:62 ~lt150:0 ~lt300:0 ~gt300:13 ~gap:5218;
  }

(* --- 179.art: adaptive resonance network; small loops drowned in
   cache-missing scalar traversals of large arrays --- *)

let art () =
  let count = 4096 in
  let loops =
    [
      Vloop.Loop (saxpy ~name:"art_p" ~count ~a:3 ~x:"f1" ~y:"f2" ~out:"f2");
      Vloop.Loop (dot ~name:"art_match" ~count ~x:"f1" ~y:"bus" ~acc:(r 10));
      Vloop.Loop
        (scale_clip ~name:"art_norm" ~count ~src:"f2" ~out:"f1" ~mul:5 ~shift:3
           ~lo:0 ~hi:100000);
      Vloop.Loop
        (masked_merge ~name:"art_rst" ~count ~block:8 ~a:"f1" ~b:"bus" ~out:"tds");
      Vloop.Loop
        (stencil3 ~name:"art_sp" ~count ~block:8 ~src:"bus" ~out:"tds"
           ~coeffs:(1, 2, 1) ~shift:1);
    ]
  in
  {
    Meta.name = "179.art";
    suite = Meta.Specfp;
    description =
      "ART neural network: small vector loops, 64 KB working sets, miss-bound";
    program =
      {
        Vloop.name = "art";
        sections =
          counted ~reg:(r 15) ~label:"art_frame" ~count:3
            (busy ~label:"art_scan" ~iters:16384 ~stride:8 ~sym:"big"
            :: (loops
               @ [ busy ~label:"art_scan2" ~iters:16384 ~stride:8 ~sym:"big2" ]));
        data =
          [
            warray "f1" count (fun i -> (i * 3 mod 211) - 100);
            warray "f2" count (fun i -> (i * 7 mod 199) - 90);
            warray "bus" count (fun i -> (i * 5 mod 191) - 95);
            wzeros "tds" count;
            warray "big" 131072 (fun i -> i mod 97);
            warray "big2" 131072 (fun i -> i mod 89);
          ];
      };
    paper = paper ~mean:12.8 ~max:19 ~lt150:0 ~lt300:0 ~gt300:5 ~gap:2102224;
  }

let benchmarks () =
  [ alvinn (); ear (); nasa7 (); tomcatv (); hydro2d (); swim (); mgrid (); art () ]
