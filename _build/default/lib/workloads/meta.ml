(* Shared benchmark record types; {!Workload} re-exports them and adds
   the registry (the definitions live in {!Spec_fp}, {!Mediabench} and
   {!Dsp}, which must not depend on the registry). *)

type suite = Specfp | Mediabench | Kernel

type paper_ref = {
  table5_mean : float;
  table5_max : int;
  table6_lt150 : int;
  table6_lt300 : int;
  table6_gt300 : int;
  table6_mean : int;
}

type t = {
  name : string;
  suite : suite;
  description : string;
  program : Liquid_scalarize.Vloop.program;
  paper : paper_ref;
}
