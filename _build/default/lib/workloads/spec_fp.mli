(** The eight SPEC floating-point benchmarks of the paper's evaluation,
    rebuilt as synthetic fixed-point workloads with the same hot-loop
    structure (loop counts and sizes per the paper's Tables 5-6, call
    phasing per Table 6, data footprint per the Figure 6 discussion). *)

val benchmarks : unit -> Meta.t list
(** In the paper's order: 052.alvinn, 056.ear, 093.nasa7, 101.tomcatv,
    104.hydro2d, 171.swim, 172.mgrid, 179.art. *)
