lib/workloads/workload.ml: Dsp Liquid_scalarize List Mediabench Meta Spec_fp
