lib/workloads/mediabench.ml: Build Esize Kernels Liquid_isa Liquid_scalarize Liquid_visa Meta Opcode Vinsn Vloop
