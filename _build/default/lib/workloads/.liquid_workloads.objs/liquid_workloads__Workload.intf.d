lib/workloads/workload.mli: Liquid_scalarize Vloop
