lib/workloads/mediabench.mli: Meta
