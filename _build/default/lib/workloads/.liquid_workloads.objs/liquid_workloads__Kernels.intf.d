lib/workloads/kernels.mli: Data Esize Liquid_isa Liquid_prog Liquid_scalarize Reg Vloop
