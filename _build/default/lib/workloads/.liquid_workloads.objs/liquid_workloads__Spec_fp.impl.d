lib/workloads/spec_fp.ml: Build Kernels Liquid_isa Liquid_scalarize List Meta Opcode Printf Vloop
