lib/workloads/meta.ml: Liquid_scalarize
