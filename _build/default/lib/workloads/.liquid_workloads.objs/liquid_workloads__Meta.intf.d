lib/workloads/meta.mli: Liquid_scalarize
