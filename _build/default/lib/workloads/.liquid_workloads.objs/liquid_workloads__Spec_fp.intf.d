lib/workloads/spec_fp.mli: Meta
