lib/workloads/dsp.ml: Build Kernels Liquid_scalarize Meta Vloop
