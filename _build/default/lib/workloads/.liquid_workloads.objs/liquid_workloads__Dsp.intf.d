lib/workloads/dsp.mli: Meta
