lib/workloads/kernels.ml: Array Build Cond Data Esize Liquid_isa Liquid_prog Liquid_scalarize Liquid_visa List Opcode Reg Vinsn Vloop
