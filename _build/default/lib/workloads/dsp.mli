(** Signal-processing kernels: LU, FFT and FIR (the paper's kernel set).
    FIR is the paper's best case (~94% vectorizable, cache resident);
    FFT is the running example of §3.4 whose butterfly stage fissions
    into two outlined loops. *)

val benchmarks : unit -> Meta.t list
(** LU, FFT, FIR. *)
