(* Signal-processing kernels: LU, FIR, FFT (the paper's §5 kernel set).
   FIR is almost entirely vectorizable and cache-resident — the paper's
   best case; FFT is the running example of §3.4 with its fissioned
   butterfly loop. *)

open Liquid_scalarize
open Kernels
open Build

let paper ~mean ~max ~lt150 ~lt300 ~gt300 ~gap =
  {
    Meta.table5_mean = mean;
    table5_max = max;
    table6_lt150 = lt150;
    table6_lt300 = lt300;
    table6_gt300 = gt300;
    table6_mean = gap;
  }

(* --- LU: row elimination, one saxpy-shaped loop per pivot row --- *)

let lu () =
  let elim = saxpy ~name:"lu_elim" ~count:1024 ~a:3 ~x:"pivot_row" ~y:"work_row" ~out:"work_row" in
  {
    Meta.name = "LU";
    suite = Meta.Kernel;
    description = "LU decomposition row elimination with scalar pivot search";
    program =
      {
        Vloop.name = "lu";
        sections =
          counted ~reg:(r 15) ~label:"lu_row" ~count:16
            [
              busy ~label:"lu_pivot" ~iters:800 ~stride:1 ~sym:"pivot_row";
              Vloop.Loop elim;
            ];
        data =
          [
            warray "pivot_row" 1024 (fun i -> (i * 7 mod 301) - 150);
            warray "work_row" 1024 (fun i -> (i * 11 mod 401) - 200);
          ];
      };
    paper = paper ~mean:11.0 ~max:11 ~lt150:0 ~lt300:0 ~gt300:1 ~gap:15054;
  }

(* --- FIR: a three-tap blocked filter over a delay line (x, x shifted
   by one and two samples); nearly the whole runtime is the hot loop --- *)

let fir () =
  let tap =
    mac_chain ~name:"fir_tap" ~count:1024
      ~terms:[ ("x_d0", 5); ("x_d1", 3) ]
      ~out:"y_out"
  in
  let x i = ((i * 13) mod 255) - 127 in
  {
    Meta.name = "FIR";
    suite = Meta.Kernel;
    description = "blocked FIR filter over a delay line, 94% vectorizable";
    program =
      {
        Vloop.name = "fir";
        sections =
          counted ~reg:(r 15) ~label:"fir_frame" ~count:100
            [
              busy ~label:"fir_io" ~iters:40 ~stride:1 ~sym:"x_d0";
              Vloop.Loop tap;
            ];
        data =
          [
            warray "x_d0" 1024 x;
            warray "x_d1" 1024 (fun i -> x (i + 1));
            wzeros "y_out" 1024;
          ];
      };
    paper = paper ~mean:11.0 ~max:11 ~lt150:0 ~lt300:0 ~gt300:1 ~gap:13343;
  }

(* --- FFT: the paper's running example (Figures 2-4) plus a twiddle
   update; the butterfly stage fissions into two outlined loops --- *)

let fft () =
  let count = 64 in
  let stage =
    fft_stage ~name:"fft_st" ~count ~block:8 ~re:"RealOut" ~im:"ImagOut"
      ~wr:"ar" ~wi:"ai"
  in
  let twiddle =
    mac_chain ~name:"fft_tw" ~count
      ~terms:
        [ ("ar", 3); ("ai", 5); ("RealOut", 2); ("ImagOut", 7); ("ar", 1);
          ("ai", 2); ("RealOut", 4); ("ImagOut", 1); ("ar", 6); ("ai", 3);
          ("RealOut", 1);
        ]
      ~out:"tw"
  in
  {
    Meta.name = "FFT";
    suite = Meta.Kernel;
    description = "radix-2 butterfly stage (fissioned) plus twiddle recomputation";
    program =
      {
        Vloop.name = "fft";
        sections =
          counted ~reg:(r 15) ~label:"fft_frame" ~count:10
            [
              busy ~label:"fft_glue" ~iters:100 ~stride:1 ~sym:"ar";
              Vloop.Loop stage;
              Vloop.Loop twiddle;
            ];
        data =
          [
            warray "RealOut" count (fun i -> ((i * 7) mod 501) - 250);
            warray "ImagOut" count (fun i -> ((i * 3) mod 401) - 200);
            warray "ar" count (fun i -> i mod 9);
            warray "ai" count (fun i -> 5 - (i mod 4));
            wzeros "tw" count;
          ];
      };
    paper = paper ~mean:31.3 ~max:38 ~lt150:0 ~lt300:0 ~gt300:3 ~gap:7716;
  }

let benchmarks () = [ lu (); fft (); fir () ]
