(* Tests for the assembly front end: emit/parse round-trips, grammar
   corner cases, and running a program written as text. *)

open Liquid_isa
open Liquid_visa
open Liquid_prog
open Liquid_scalarize
open Helpers
module Cpu = Liquid_pipeline.Cpu

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let programs_equal (a : Program.t) (b : Program.t) =
  let items_equal x y =
    match (x, y) with
    | Program.Label l1, Program.Label l2 -> l1 = l2
    | Program.I i1, Program.I i2 ->
        Minsn.map ~sym:(fun s -> s) ~lab:(fun l -> l) i1
        = Minsn.map ~sym:(fun s -> s) ~lab:(fun l -> l) i2
    | Program.Label _, Program.I _ | Program.I _, Program.Label _ -> false
  in
  List.length a.Program.text = List.length b.Program.text
  && List.for_all2 items_equal a.Program.text b.Program.text
  && a.Program.data = b.Program.data

let roundtrip p =
  let parsed = Parse.program ~name:p.Program.name (Parse.emit p) in
  if not (programs_equal p parsed) then
    Alcotest.failf "round-trip failed:@.%s@.vs@.%s" (Parse.emit p)
      (Parse.emit parsed)

let test_roundtrip_handwritten () =
  let open Build in
  roundtrip
    (Program.make ~name:"rt"
       ~text:
         [
           Program.Label "main";
           mov (r 1) 0;
           movc Cond.Gt (r 2) 255;
           label "loop";
           ld (r 2) "xs" (ri (r 1));
           ld ~esize:Esize.Byte ~signed:false (r 3) "bs" (ri (r 1));
           ld ~esize:Esize.Half ~signed:true (r 4) "hs" (ri (r 1));
           dp Opcode.Smax (r 5) (r 5) (ri (r 2));
           dp Opcode.Bic (r 6) (r 5) (i 12345);
           addi (r 1) (r 1) 1;
           cmp (r 1) (i 4);
           b ~cond:Cond.Lt "loop";
           st ~esize:Esize.Half (r 5) "hs" (i 2);
           bl "f";
           bl_region "g";
           halt;
           Program.Label "f";
           ret;
           Program.Label "g";
           ret;
         ]
       ~data:
         [
           Data.make ~name:"xs" ~esize:Esize.Word [| 1; -2; 3; -4 |];
           Data.make ~name:"bs" ~esize:Esize.Byte [| 7; 8; 9; 10 |];
           Data.zeros ~name:"hs" ~esize:Esize.Half 8;
         ])

let test_roundtrip_vector_program () =
  let open Build in
  roundtrip
    (Program.make ~name:"vecrt"
       ~text:
         [
           Program.Label "main";
           mov (r 0) 0;
           Program.I (Minsn.V (vld (v 1) "a"));
           Program.I (Minsn.V (vadd (v 2) (v 1) (vr (v 1))));
           Program.I (Minsn.V (vmul (v 2) (v 2) (vi (-3))));
           Program.I (Minsn.V (vand (v 2) (v 2) (vc [| -1; 0; -1; 0 |])));
           Program.I (Minsn.V (vqadd ~esize:Esize.Byte ~signed:false (v 3) (v 1) (v 2)));
           Program.I (Minsn.V (vqsub ~esize:Esize.Half ~signed:true (v 3) (v 1) (v 2)));
           Program.I (Minsn.V (vbfly 8 (v 4) (v 2)));
           Program.I (Minsn.V (vrot ~block:4 ~by:3 (v 4) (v 4)));
           Program.I (Minsn.V (vred Opcode.Smin (r 5) (v 4)));
           Program.I (Minsn.V (vst (v 2) "a"));
           halt;
         ]
       ~data:[ Data.make ~name:"a" ~esize:Esize.Word [| 1; 2; 3; 4 |] ])

let test_roundtrip_generated_liquid () =
  (* The scalarizer's output (offset arrays, idioms, fission) must also
     survive the text round-trip. *)
  let liquid =
    Codegen.liquid
      (simple_program ~frames:2 ~data:(fft_data ~count:64) (fft_loop ~count:64))
  in
  roundtrip liquid

let test_parse_and_run () =
  let source =
    {|
; a tiny checksum over four words
.text
main:
    mov r1, #0
    mov r3, #0
loop:
    ld r2, [xs + r1 lsl 2]
    add r3, r3, r2
    add r1, r1, #1
    cmp r1, #4
    blt loop
    st [sum], r3
    halt
.data
xs: .word 10 20 30 40
sum: .word[1]
|}
  in
  let prog = Parse.program ~name:"checksum" source in
  check_bool "validates" true (Program.validate prog = Ok ());
  let run = run_image prog in
  check "sum" 100 (read_array run prog "sum").(0)

let test_parse_errors () =
  let expect_error ~line source =
    match Parse.program source with
    | exception Parse.Parse_error { line = l; _ } -> check "error line" line l
    | _ -> Alcotest.fail "expected a parse error"
  in
  expect_error ~line:1 "frobnicate r1, r2";
  expect_error ~line:1 "vfrob v1, v2, v3";
  expect_error ~line:1 "mov r77, #0";
  expect_error ~line:1 "movxx r1, #0";
  expect_error ~line:2 "mov r1, #0\nld r1, xs";
  expect_error ~line:1 "add r1, r2";
  expect_error ~line:2 ".data\nxs: .float 1 2";
  expect_error ~line:1 "mylabel: mov r1, #0"

let test_parse_comments_and_blanks () =
  let prog =
    Parse.program "  ; nothing \n\n.text\nmain:\n  halt ; stop here\n"
  in
  check "one instruction" 1 (List.length (Program.insns prog))

let tests =
  [
    Alcotest.test_case "roundtrip: handwritten scalar" `Quick
      test_roundtrip_handwritten;
    Alcotest.test_case "roundtrip: vector program" `Quick
      test_roundtrip_vector_program;
    Alcotest.test_case "roundtrip: generated liquid binary" `Quick
      test_roundtrip_generated_liquid;
    Alcotest.test_case "parse and run" `Quick test_parse_and_run;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "comments and blanks" `Quick test_parse_comments_and_blanks;
  ]
