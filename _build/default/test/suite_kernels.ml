(* Tests for the workload kernel builders and scalar glue generators:
   every kernel computes its documented function (validated against an
   OCaml reference), and the glue primitives behave as specified. *)

open Liquid_isa
open Liquid_scalarize
open Liquid_workloads
open Helpers
module Memory = Liquid_machine.Memory
module Cpu = Liquid_pipeline.Cpu

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let count = 32

(* Run a single kernel loop once (baseline flavour) and return a named
   output array. *)
let run_kernel ~data ~out loop =
  let p = { Vloop.name = "k"; sections = [ Vloop.Loop loop ]; data } in
  let prog = Codegen.baseline p in
  let run = run_image prog in
  read_array run prog out

let xs = Array.init count (fun i -> ((i * 13) mod 61) - 30
)
let ys = Array.init count (fun i -> ((i * 7) mod 43) - 21)

let base_data () =
  [
    Kernels.warray "x" count (fun i -> xs.(i));
    Kernels.warray "y" count (fun i -> ys.(i));
    Kernels.wzeros "o" count;
  ]

let test_saxpy () =
  let got =
    run_kernel ~data:(base_data ()) ~out:"o"
      (Kernels.saxpy ~name:"s" ~count ~a:5 ~x:"x" ~y:"y" ~out:"o")
  in
  check_arrays "saxpy" (Array.init count (fun i -> (5 * xs.(i)) + ys.(i))) got

let test_dot () =
  let loop = Kernels.dot ~name:"d" ~count ~x:"x" ~y:"y" ~acc:(Build.r 10) in
  let p =
    {
      Vloop.name = "k";
      sections =
        [ Vloop.Loop loop; Vloop.Code [ Build.st (Build.r 10) "o" (Build.i 0) ] ];
      data = base_data ();
    }
  in
  let prog = Codegen.baseline p in
  let run = run_image prog in
  let expected = Array.fold_left ( + ) 0 (Array.init count (fun i -> xs.(i) * ys.(i))) in
  check "dot product" expected (read_array run prog "o").(0)

let test_mac_chain () =
  let got =
    run_kernel ~data:(base_data ()) ~out:"o"
      (Kernels.mac_chain ~name:"m" ~count ~terms:[ ("x", 3); ("y", 2); ("x", 1) ] ~out:"o")
  in
  check_arrays "mac chain"
    (Array.init count (fun i -> (3 * xs.(i)) + (2 * ys.(i)) + xs.(i)))
    got

let test_stencil3 () =
  let got =
    run_kernel ~data:(base_data ()) ~out:"o"
      (Kernels.stencil3 ~name:"st" ~count ~block:4 ~src:"x" ~out:"o"
         ~coeffs:(1, 2, 1) ~shift:2)
  in
  (* Block-local neighbours: left = rotate-by-1 within each 4-block,
     right = rotate-by-3. *)
  let expected =
    Array.init count (fun i ->
        let blk = i / 4 * 4 and pos = i mod 4 in
        let left = xs.(blk + ((pos + 1) mod 4)) in
        let right = xs.(blk + ((pos + 3) mod 4)) in
        Liquid_isa.Word.sar (xs.(i) + (2 * left) + right) 2)
  in
  check_arrays "stencil" expected got

let test_blend_sat () =
  let data =
    [
      Kernels.barray "pa" count (fun i -> (i * 21) mod 256);
      Kernels.barray "pb" count (fun i -> (i * 17) mod 256);
      Kernels.bzeros "po" count;
    ]
  in
  let got =
    run_kernel ~data ~out:"po"
      (Kernels.blend_sat ~name:"b" ~count ~esize:Esize.Byte ~signed:false
         ~a:"pa" ~b:"pb" ~out:"po")
  in
  (* read_array sign-extends bytes, so compare through the byte domain *)
  check_arrays "saturating blend"
    (Array.init count (fun i ->
         Esize.truncate Esize.Byte
           (min 255 (((i * 21) mod 256) + ((i * 17) mod 256)))))
    got

let test_scale_clip () =
  let got =
    run_kernel ~data:(base_data ()) ~out:"o"
      (Kernels.scale_clip ~name:"sc" ~count ~src:"x" ~out:"o" ~mul:7 ~shift:2
         ~lo:(-20) ~hi:20)
  in
  check_arrays "scale and clip"
    (Array.init count (fun i -> max (-20) (min 20 (Word.sar (7 * xs.(i)) 2))))
    got

let test_masked_merge () =
  let got =
    run_kernel ~data:(base_data ()) ~out:"o"
      (Kernels.masked_merge ~name:"mm" ~count ~block:4 ~a:"x" ~b:"y" ~out:"o")
  in
  check_arrays "masked merge"
    (Array.init count (fun i -> if i mod 4 < 2 then xs.(i) else ys.(i)))
    got

let test_max_energy () =
  let loop = Kernels.max_energy ~name:"me" ~count ~src:"x" ~acc:(Build.r 10) in
  let p =
    {
      Vloop.name = "k";
      sections =
        [ Vloop.Loop loop; Vloop.Code [ Build.st (Build.r 10) "o" (Build.i 0) ] ];
      data = base_data ();
    }
  in
  let prog = Codegen.baseline p in
  let run = run_image prog in
  let expected = Array.fold_left max min_int (Array.map (fun v -> v * v) xs) in
  check "peak energy" expected (read_array run prog "o").(0)

let test_sat_mac () =
  let data =
    [
      Kernels.harray "hx" count (fun i -> (i * 997 mod 4001) - 2000);
      Kernels.harray "hy" count (fun i -> (i * 601 mod 3001) - 1500);
    ]
  in
  let got =
    run_kernel ~data ~out:"hy"
      (Kernels.sat_mac ~name:"sm" ~count ~esize:Esize.Half ~x:"hx" ~y:"hy"
         ~scale:29 ~out:"hy")
  in
  let expected =
    Array.init count (fun i ->
        let x = (i * 997 mod 4001) - 2000 and y = (i * 601 mod 3001) - 1500 in
        let scaled = Word.sar (x * 29) 6 in
        max (-32768) (min 32767 (scaled + y)))
  in
  check_arrays "saturating MAC" expected got

let test_fft_stage_reference () =
  (* The §3.4 loop against a direct OCaml transliteration. *)
  let n = 64 in
  let re0 = Array.init n (fun i -> (i * 7) - 100) in
  let im0 = Array.init n (fun i -> (i * 3) + 11) in
  let wr = Array.init n (fun i -> i mod 9) in
  let wi = Array.init n (fun i -> 5 - (i mod 4)) in
  let data =
    [
      Kernels.warray "RealOut" n (fun i -> re0.(i));
      Kernels.warray "ImagOut" n (fun i -> im0.(i));
      Kernels.warray "ar" n (fun i -> wr.(i));
      Kernels.warray "ai" n (fun i -> wi.(i));
    ]
  in
  let got =
    run_kernel ~data ~out:"RealOut"
      (Kernels.fft_stage ~name:"fs" ~count:n ~block:8 ~re:"RealOut"
         ~im:"ImagOut" ~wr:"ar" ~wi:"ai")
  in
  let bfly = Liquid_visa.Perm.apply (Liquid_visa.Perm.Halfswap 8) in
  let re_b = bfly re0 and im_b = bfly im0 in
  let tr = Array.init n (fun i -> (wr.(i) * re_b.(i)) - (wi.(i) * im_b.(i))) in
  let lo = Array.init n (fun i -> re0.(i) - tr.(i)) in
  let hi = Array.init n (fun i -> re0.(i) + tr.(i)) in
  let lo_masked = Array.init n (fun i -> if i mod 8 >= 4 then lo.(i) else 0) in
  let lo_swapped = bfly lo_masked in
  let hi_masked = Array.init n (fun i -> if i mod 8 < 4 then hi.(i) else 0) in
  let expected = Array.init n (fun i -> lo_swapped.(i) lor hi_masked.(i)) in
  check_arrays "fft stage" expected got

(* --- glue generators --- *)

let test_busy_accumulates () =
  let open Build in
  let p =
    {
      Vloop.name = "g";
      sections =
        [
          Kernels.busy ~label:"bz" ~iters:10 ~stride:2 ~sym:"x";
          Vloop.Code [ st (r 2) "o" (i 0) ];
        ];
      data = base_data ();
    }
  in
  let prog = Codegen.baseline p in
  let run = run_image prog in
  let expected = List.fold_left (fun acc k -> acc + xs.(2 * k)) 0 (List.init 10 Fun.id) in
  check "busy sum" expected (read_array run prog "o").(0)

let test_counted_nesting () =
  let open Build in
  (* Two nesting levels using the two preserved registers. *)
  let p =
    {
      Vloop.name = "g";
      sections =
        Kernels.counted ~reg:(r 15) ~label:"outer" ~count:3
          (Kernels.counted ~reg:(r 12) ~label:"inner" ~count:4
             [
               Vloop.Code
                 [ ld (r 1) "o" (i 0); addi (r 1) (r 1) 1; st (r 1) "o" (i 0) ];
             ]);
      data = base_data ();
    }
  in
  let prog = Codegen.baseline p in
  let run = run_image prog in
  check "3 x 4 executions" 12 (read_array run prog "o").(0)

let test_counted_rejects_clobbered_registers () =
  Alcotest.check_raises "r5"
    (Invalid_argument "Kernels.counted: only r12 and r15 survive loop execution")
    (fun () -> ignore (Kernels.counted ~reg:(Build.r 5) ~label:"x" ~count:1 []))

(* --- disassembler --- *)

let test_disasm_annotations () =
  let w = match Workload.find "LU" with Some w -> w | None -> assert false in
  let image =
    Liquid_prog.Image.of_program (Codegen.liquid w.Workload.program)
  in
  let text = Liquid_prog.Disasm.of_image image in
  let has needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "labels recovered" true (has "region_lu_elim_0:");
  check_bool "symbols recovered" true (has "; pivot_row");
  check_bool "branch targets annotated" true (has "; region_lu_elim_0")

let tests =
  [
    Alcotest.test_case "saxpy reference" `Quick test_saxpy;
    Alcotest.test_case "dot reference" `Quick test_dot;
    Alcotest.test_case "mac chain reference" `Quick test_mac_chain;
    Alcotest.test_case "stencil reference" `Quick test_stencil3;
    Alcotest.test_case "saturating blend reference" `Quick test_blend_sat;
    Alcotest.test_case "scale/clip reference" `Quick test_scale_clip;
    Alcotest.test_case "masked merge reference" `Quick test_masked_merge;
    Alcotest.test_case "max energy reference" `Quick test_max_energy;
    Alcotest.test_case "saturating MAC reference" `Quick test_sat_mac;
    Alcotest.test_case "fft stage reference" `Quick test_fft_stage_reference;
    Alcotest.test_case "busy glue accumulates" `Quick test_busy_accumulates;
    Alcotest.test_case "counted nesting" `Quick test_counted_nesting;
    Alcotest.test_case "counted register check" `Quick
      test_counted_rejects_clobbered_registers;
    Alcotest.test_case "disassembler annotations" `Quick test_disasm_annotations;
  ]
