(* Tests for the interleaved-access extension (the paper's §3.3 second
   unsupported class, implemented here as strided vector loads/stores
   with a scaled-induction scalar schema). *)

open Liquid_isa
open Liquid_visa
open Liquid_prog
open Liquid_scalarize
open Liquid_pipeline
open Liquid_translate
open Helpers
open Build
module Kernels = Liquid_workloads.Kernels
module Memory = Liquid_machine.Memory

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- semantics --- *)

let test_vlds_semantics () =
  let c = Sem.create_ctx (Memory.create ()) in
  c.Sem.lanes <- 4;
  for i = 0 to 15 do
    Memory.write c.Sem.mem ~addr:(0x4000 + (i * 4)) ~bytes:4 (100 + i)
  done;
  c.Sem.regs.(0) <- 1;
  ignore
    (Sem.step_vector c
       (Vinsn.Vlds
          {
            esize = Esize.Word;
            signed = true;
            dst = v 1;
            base = Insn.Sym 0x4000;
            index = r 0;
            stride = 2;
            phase = 1;
          }));
  (* lanes load elements 2*(1+i)+1 = 3,5,7,9 *)
  Alcotest.(check (array int)) "deinterleaved" [| 103; 105; 107; 109 |]
    (Array.sub c.Sem.vregs.(1) 0 4)

let test_vsts_semantics () =
  let c = Sem.create_ctx (Memory.create ()) in
  c.Sem.lanes <- 2;
  c.Sem.regs.(0) <- 0;
  c.Sem.vregs.(3).(0) <- 7;
  c.Sem.vregs.(3).(1) <- 9;
  ignore
    (Sem.step_vector c
       (Vinsn.Vsts
          {
            esize = Esize.Word;
            src = v 3;
            base = Insn.Sym 0x5000;
            index = r 0;
            stride = 2;
            phase = 0;
          }));
  check "element 0" 7 (Memory.read c.Sem.mem ~addr:0x5000 ~bytes:4 ~signed:true);
  check "element 2" 9 (Memory.read c.Sem.mem ~addr:0x5008 ~bytes:4 ~signed:true);
  check "gap untouched" 0 (Memory.read c.Sem.mem ~addr:0x5004 ~bytes:4 ~signed:true)

(* --- the complex-magnitude workload used throughout this suite --- *)

let count = 32

let cplx_mag_loop =
  {
    Vloop.name = "cmag";
    count;
    body =
      [
        vld2 ~phase:0 (v 1) "iq";
        vld2 ~phase:1 (v 2) "iq";
        vmul (v 1) (v 1) (vr (v 1));
        vmul (v 2) (v 2) (vr (v 2));
        vadd (v 1) (v 1) (vr (v 2));
        vst (v 1) "mag";
      ];
    reductions = [];
  }

let cplx_data =
  [
    Kernels.warray "iq" (2 * count) (fun i -> ((i * 7) mod 41) - 20);
    Kernels.wzeros "mag" count;
  ]

let expected_mag =
  Array.init count (fun k ->
      let e i = ((i * 7) mod 41) - 20 in
      let re = e (2 * k) and im = e ((2 * k) + 1) in
      (re * re) + (im * im))

(* --- scalarization --- *)

let test_scalar_schema () =
  let out = Scalarize.scalarize cplx_mag_loop in
  check "one segment" 1 (List.length out.Scalarize.segments);
  let insns =
    List.filter_map
      (function
        | Program.I (Minsn.S i) -> Some i
        | Program.I (Minsn.V _) | Program.Label _ -> None)
      out.Scalarize.region_items
  in
  check_bool "scaled induction" true
    (List.exists
       (function
         | Insn.Dp { op = Opcode.Lsl; src1; src2 = Insn.Imm 1; _ } ->
             Reg.equal src1 Vloop.induction
         | _ -> false)
       insns);
  check_bool "phase add" true
    (List.exists
       (function
         | Insn.Dp { op = Opcode.Add; dst; src2 = Insn.Imm 1; _ } ->
             Reg.equal dst Vloop.scratch
         | _ -> false)
       insns)

(* --- translation: the generated liquid binary, translated offline --- *)

let test_translated_microcode () =
  let p = { Vloop.name = "cm"; sections = [ Vloop.Loop cplx_mag_loop ]; data = cplx_data } in
  let image = Image.of_program (Codegen.liquid p) in
  match Offline.translate_all ~image ~lanes:8 () with
  | [ (_, _, Translator.Translated u) ] ->
      check "width" 8 u.Ucode.width;
      let strided =
        Array.to_list u.Ucode.uops
        |> List.filter_map (function
             | Ucode.UV (Vinsn.Vlds { stride; phase; _ }) -> Some (stride, phase)
             | _ -> None)
      in
      Alcotest.(check (list (pair int int)))
        "two deinterleaving loads" [ (2, 0); (2, 1) ] strided
  | [ (_, _, Translator.Aborted a) ] ->
      Alcotest.failf "aborted: %s" (Abort.to_string a)
  | _ -> Alcotest.fail "one region expected"

let test_equivalence_all_widths () =
  let p =
    simple_program ~name:"cm" ~frames:3 ~data:cplx_data cplx_mag_loop
  in
  let base_prog = Codegen.baseline p in
  let base = run_image base_prog in
  check_arrays "baseline math" expected_mag (read_array base base_prog "mag");
  let liquid_prog = Codegen.liquid p in
  List.iter
    (fun lanes ->
      let run = run_image ~config:(Cpu.liquid_config ~lanes) liquid_prog in
      check_arrays
        (Printf.sprintf "mag at %d lanes" lanes)
        expected_mag
        (read_array run liquid_prog "mag");
      check_bool
        (Printf.sprintf "translated at %d lanes" lanes)
        true
        (run.Cpu.stats.Liquid_machine.Stats.ucode_hits > 0))
    [ 2; 4; 8; 16 ]

let test_interleaving_store () =
  (* Re-interleave two planes into one array. *)
  let loop =
    {
      Vloop.name = "ilv";
      count;
      body =
        [
          vld (v 1) "re_p";
          vld (v 2) "im_p";
          vst2 ~phase:0 (v 1) "out_iq";
          vst2 ~phase:1 (v 2) "out_iq";
        ];
      reductions = [];
    }
  in
  let data =
    [
      Kernels.warray "re_p" count (fun i -> i + 1);
      Kernels.warray "im_p" count (fun i -> -(i + 1));
      Kernels.wzeros "out_iq" (2 * count);
    ]
  in
  let p = simple_program ~name:"ilv" ~frames:2 ~data loop in
  let liquid_prog = Codegen.liquid p in
  let run = run_image ~config:(Cpu.liquid_config ~lanes:8) liquid_prog in
  let expected =
    Array.init (2 * count) (fun i ->
        if i mod 2 = 0 then (i / 2) + 1 else -((i / 2) + 1))
  in
  check_arrays "interleaved output" expected (read_array run liquid_prog "out_iq");
  check_bool "translated" true (run.Cpu.stats.Liquid_machine.Stats.ucode_hits > 0)

(* --- aborts --- *)

let ind = Vloop.induction

let test_unsupported_stride_aborts () =
  (* Stride 8 (lsl #3) has no translator rule. *)
  let items =
    [ mov ind 0; label "f_top" ]
    @ [
        dp Opcode.Lsl (r 13) ind (i 3);
        ld (r 1) "a" (ri (r 13));
        st (r 1) "c" (ri ind);
      ]
    @ [ addi ind ind 1; cmp ind (i 8); b ~cond:Cond.Lt "f_top" ]
  in
  let data =
    [ Kernels.warray "a" 64 (fun i -> i); Kernels.wzeros "c" 64 ]
  in
  expect_abort ~data items
    (function Abort.Illegal_insn _ -> true | _ -> false)
    "stride 8"

let test_scaled_in_arithmetic_aborts () =
  let items =
    [ mov ind 0; label "f_top" ]
    @ [
        ld (r 1) "a" (ri ind);
        dp Opcode.Lsl (r 13) ind (i 1);
        dp Opcode.Add (r 2) (r 1) (ri (r 13));
        st (r 2) "c" (ri ind);
      ]
    @ [ addi ind ind 1; cmp ind (i 8); b ~cond:Cond.Lt "f_top" ]
  in
  let data = [ Kernels.warray "a" 16 (fun i -> i); Kernels.wzeros "c" 16 ] in
  expect_abort ~data items
    (function Abort.Illegal_insn _ -> true | _ -> false)
    "scaled in arithmetic"

let test_dangling_scaled_aborts () =
  let items =
    [ mov ind 0; label "f_top" ]
    @ [
        dp Opcode.Lsl (r 13) ind (i 1);
        ld (r 1) "a" (ri ind);
        st (r 1) "c" (ri ind);
      ]
    @ [ addi ind ind 1; cmp ind (i 8); b ~cond:Cond.Lt "f_top" ]
  in
  let data = [ Kernels.warray "a" 16 (fun i -> i); Kernels.wzeros "c" 16 ] in
  expect_abort ~data items
    (function Abort.Dangling_address_combine -> true | _ -> false)
    "dangling scaled induction"

(* --- encode / parse round-trips --- *)

let test_encode_roundtrip () =
  let insns =
    [|
      Minsn.V
        (Vinsn.Vlds
           {
             esize = Esize.Half;
             signed = true;
             dst = v 3;
             base = Insn.Sym 0x100000;
             index = r 0;
             stride = 4;
             phase = 3;
           });
      Minsn.V
        (Vinsn.Vsts
           {
             esize = Esize.Byte;
             src = v 4;
             base = Insn.Sym 0x100040;
             index = r 0;
             stride = 2;
             phase = 1;
           });
    |]
  in
  let decoded = Encode.decode (Encode.encode insns) in
  check_bool "roundtrip" true (Array.for_all2 Minsn.equal_exec decoded insns)

let test_parse_roundtrip () =
  let p =
    Program.make ~name:"ilv"
      ~text:
        [
          Program.Label "main";
          Program.I (Minsn.V (vlds ~esize:Esize.Half ~stride:4 ~phase:2 (v 1) "iq"));
          Program.I (Minsn.V (vsts ~stride:2 ~phase:1 (v 1) "iq"));
          halt;
        ]
      ~data:[ Kernels.harray "iq" 8 (fun i -> i) ]
  in
  let q = Parse.program ~name:"ilv" (Parse.emit p) in
  check_bool "parse roundtrip" true (Parse.emit p = Parse.emit q)

let test_native_supports_strides () =
  let p = { Vloop.name = "cm"; sections = [ Vloop.Loop cplx_mag_loop ]; data = cplx_data } in
  let native = Codegen.native ~width:4 p in
  let run = Cpu.run ~config:(Cpu.native_config ~lanes:4) (Image.of_program native) in
  let img = Image.of_program native in
  let addr = Image.array_addr img "mag" in
  let got =
    Array.init count (fun i ->
        Memory.read run.Cpu.memory ~addr:(addr + (4 * i)) ~bytes:4 ~signed:true)
  in
  check_arrays "native strided math" expected_mag got

let tests =
  [
    Alcotest.test_case "vlds semantics" `Quick test_vlds_semantics;
    Alcotest.test_case "vsts semantics" `Quick test_vsts_semantics;
    Alcotest.test_case "scalar schema" `Quick test_scalar_schema;
    Alcotest.test_case "translated microcode" `Quick test_translated_microcode;
    Alcotest.test_case "equivalence at all widths" `Quick test_equivalence_all_widths;
    Alcotest.test_case "interleaving store" `Quick test_interleaving_store;
    Alcotest.test_case "unsupported stride aborts" `Quick test_unsupported_stride_aborts;
    Alcotest.test_case "scaled in arithmetic aborts" `Quick
      test_scaled_in_arithmetic_aborts;
    Alcotest.test_case "dangling scaled aborts" `Quick test_dangling_scaled_aborts;
    Alcotest.test_case "encode roundtrip" `Quick test_encode_roundtrip;
    Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
    Alcotest.test_case "native strided binary" `Quick test_native_supports_strides;
  ]

(* --- the VTBL extension: runtime-indexed table lookup --- *)

let test_vgather_semantics () =
  let c = Sem.create_ctx (Memory.create ()) in
  c.Sem.lanes <- 4;
  for i = 0 to 7 do
    Memory.write c.Sem.mem ~addr:(0x6000 + (i * 4)) ~bytes:4 (i * 11)
  done;
  c.Sem.vregs.(2).(0) <- 3;
  c.Sem.vregs.(2).(1) <- 0;
  c.Sem.vregs.(2).(2) <- 7;
  c.Sem.vregs.(2).(3) <- 1;
  ignore
    (Sem.step_vector c
       (Vinsn.Vgather
          { esize = Esize.Word; signed = true; dst = v 1; base = Insn.Sym 0x6000; index_v = v 2 }));
  Alcotest.(check (array int)) "gathered" [| 33; 0; 77; 11 |]
    (Array.sub c.Sem.vregs.(1) 0 4)

let vtbl_loop =
  {
    Vloop.name = "tbl";
    count = 16;
    body =
      [
        vld (v 1) "perm_idx";
        vtbl (v 2) "table" (v 1);
        vst (v 2) "out_t";
      ];
    reductions = [];
  }

let vtbl_data =
  [
    (* a runtime permutation: reverse within the whole 16-element table *)
    Kernels.warray "perm_idx" 16 (fun i -> 15 - i);
    Kernels.warray "table" 16 (fun i -> 1000 + i);
    Kernels.wzeros "out_t" 16;
  ]

let test_vtbl_translates_and_computes () =
  let p = simple_program ~name:"tblp" ~frames:3 ~data:vtbl_data vtbl_loop in
  let base_prog = Codegen.baseline p in
  let base = run_image base_prog in
  let expected = Array.init 16 (fun i -> 1000 + (15 - i)) in
  check_arrays "baseline table lookup" expected (read_array base base_prog "out_t");
  let liquid_prog = Codegen.liquid p in
  List.iter
    (fun lanes ->
      let run = run_image ~config:(Cpu.liquid_config ~lanes) liquid_prog in
      check_arrays
        (Printf.sprintf "vtbl at %d lanes" lanes)
        expected
        (read_array run liquid_prog "out_t");
      check_bool
        (Printf.sprintf "translated at %d lanes" lanes)
        true
        (run.Cpu.stats.Liquid_machine.Stats.ucode_hits > 0))
    [ 2; 4; 8; 16 ];
  (* And the microcode really contains a gather. *)
  let image = Image.of_program liquid_prog in
  match Offline.translate_all ~image ~lanes:8 () with
  | [ (_, _, Translator.Translated u) ] ->
      check "one gather" 1
        (Array.to_list u.Ucode.uops
        |> List.filter (function Ucode.UV (Vinsn.Vgather _) -> true | _ -> false)
        |> List.length)
  | _ -> Alcotest.fail "expected a translated region"

let test_vtbl_parse_roundtrip () =
  let p =
    Program.make ~name:"t"
      ~text:
        [
          Program.Label "main";
          Program.I (Minsn.V (vtbl ~esize:Esize.Byte ~signed:false (v 1) "tbl" (v 2)));
          halt;
        ]
      ~data:[ Kernels.barray "tbl" 8 (fun i -> i) ]
  in
  check_bool "roundtrip" true
    (Parse.emit p = Parse.emit (Parse.program ~name:"t" (Parse.emit p)))

let test_vtbl_encode_roundtrip () =
  let insns =
    [|
      Minsn.V
        (Vinsn.Vgather
           { esize = Esize.Half; signed = true; dst = v 5; base = Insn.Sym 0x100000; index_v = v 6 });
    |]
  in
  check_bool "roundtrip" true
    (Array.for_all2 Minsn.equal_exec (Encode.decode (Encode.encode insns)) insns)

let tests =
  tests
  @ [
      Alcotest.test_case "vgather semantics" `Quick test_vgather_semantics;
      Alcotest.test_case "vtbl translates and computes" `Quick
        test_vtbl_translates_and_computes;
      Alcotest.test_case "vtbl parse roundtrip" `Quick test_vtbl_parse_roundtrip;
      Alcotest.test_case "vtbl encode roundtrip" `Quick test_vtbl_encode_roundtrip;
    ]
