(* Unit tests for the machine substrate: memory, cache, branch predictor. *)

open Liquid_machine

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Memory --- *)

let test_memory_zero_fresh () =
  let m = Memory.create () in
  check "fresh byte" 0 (Memory.read_byte m 0x1234);
  check "fresh word" 0 (Memory.read m ~addr:0xFFF0 ~bytes:4 ~signed:true)

let test_memory_byte_roundtrip () =
  let m = Memory.create () in
  Memory.write_byte m 0x42 0xAB;
  check "byte" 0xAB (Memory.read_byte m 0x42);
  Memory.write_byte m 0x42 0x100;
  check "byte truncated" 0 (Memory.read_byte m 0x42)

let test_memory_little_endian () =
  let m = Memory.create () in
  Memory.write m ~addr:0x100 ~bytes:4 0x12345678;
  check "lsb" 0x78 (Memory.read_byte m 0x100);
  check "msb" 0x12 (Memory.read_byte m 0x103);
  check "half low" 0x5678 (Memory.read m ~addr:0x100 ~bytes:2 ~signed:false);
  check "half high" 0x1234 (Memory.read m ~addr:0x102 ~bytes:2 ~signed:false)

let test_memory_sign_extension () =
  let m = Memory.create () in
  Memory.write m ~addr:0 ~bytes:1 0xFF;
  check "signed byte" (-1) (Memory.read m ~addr:0 ~bytes:1 ~signed:true);
  check "unsigned byte" 0xFF (Memory.read m ~addr:0 ~bytes:1 ~signed:false);
  Memory.write m ~addr:4 ~bytes:2 0x8000;
  check "signed half" (-32768) (Memory.read m ~addr:4 ~bytes:2 ~signed:true);
  check "unsigned half" 0x8000 (Memory.read m ~addr:4 ~bytes:2 ~signed:false);
  Memory.write m ~addr:8 ~bytes:4 (-5);
  check "word keeps sign" (-5) (Memory.read m ~addr:8 ~bytes:4 ~signed:true);
  check "word read is always signed" (-5)
    (Memory.read m ~addr:8 ~bytes:4 ~signed:false)

let test_memory_negative_word () =
  let m = Memory.create () in
  Memory.write m ~addr:0x2000 ~bytes:4 (-123456);
  check "negative word" (-123456) (Memory.read m ~addr:0x2000 ~bytes:4 ~signed:true)

let test_memory_page_boundary () =
  let m = Memory.create () in
  (* 4 KiB pages: a word written across 0x0FFE..0x1001 must span two. *)
  Memory.write m ~addr:0x0FFE ~bytes:4 0x11223344;
  check "cross-page word" 0x11223344
    (Memory.read m ~addr:0x0FFE ~bytes:4 ~signed:true);
  check_bool "two pages touched" true (Memory.touched_pages m >= 2)

let test_memory_copy_isolation () =
  let m = Memory.create () in
  Memory.write m ~addr:0x10 ~bytes:4 7;
  let m2 = Memory.copy m in
  Memory.write m2 ~addr:0x10 ~bytes:4 9;
  check "original unchanged" 7 (Memory.read m ~addr:0x10 ~bytes:4 ~signed:true);
  check "copy updated" 9 (Memory.read m2 ~addr:0x10 ~bytes:4 ~signed:true)

let test_memory_equal_and_diff () =
  let a = Memory.create () and b = Memory.create () in
  check_bool "fresh equal" true (Memory.equal a b);
  Memory.write_byte a 0x55 1;
  check_bool "differ" false (Memory.equal a b);
  (match Memory.diff a b with
  | [ (addr, va, vb) ] ->
      check "diff addr" 0x55 addr;
      check "diff a" 1 va;
      check "diff b" 0 vb
  | other -> Alcotest.failf "expected one diff, got %d" (List.length other));
  (* A touched-but-zero page still equals an untouched one. *)
  Memory.write_byte b 0x55 1;
  Memory.write_byte b 0x9000 0;
  check_bool "zero page equal" true (Memory.equal a b)

let test_memory_blit () =
  let m = Memory.create () in
  Memory.blit_bytes m ~addr:0x30 (Bytes.of_string "ab");
  check "blit 0" (Char.code 'a') (Memory.read_byte m 0x30);
  check "blit 1" (Char.code 'b') (Memory.read_byte m 0x31)

let test_memory_bad_size () =
  Alcotest.check_raises "read size 3" (Invalid_argument "Memory.read: bad size 3")
    (fun () -> ignore (Memory.read (Memory.create ()) ~addr:0 ~bytes:3 ~signed:false))

(* --- Cache --- *)

let small_cache () =
  Cache.create { Cache.size_bytes = 256; line_bytes = 32; assoc = 2 }

let test_cache_miss_then_hit () =
  let c = small_cache () in
  Alcotest.(check bool) "first is miss" true (Cache.access c 0x100 = Cache.Miss);
  Alcotest.(check bool) "second is hit" true (Cache.access c 0x100 = Cache.Hit);
  Alcotest.(check bool) "same line hits" true (Cache.access c 0x11F = Cache.Hit);
  Alcotest.(check bool) "next line misses" true (Cache.access c 0x120 = Cache.Miss)

let test_cache_lru_eviction () =
  (* 256 B / 32 B lines / 2-way -> 4 sets. Lines mapping to set 0 are
     multiples of 128 bytes apart. *)
  let c = small_cache () in
  ignore (Cache.access c 0x000);
  ignore (Cache.access c 0x080);
  (* Touch the first line again so the second becomes LRU. *)
  ignore (Cache.access c 0x000);
  ignore (Cache.access c 0x100);
  (* evicts 0x080 *)
  Alcotest.(check bool) "kept MRU" true (Cache.access c 0x000 = Cache.Hit);
  Alcotest.(check bool) "evicted LRU" true (Cache.access c 0x080 = Cache.Miss)

let test_cache_stats_and_flush () =
  let c = small_cache () in
  ignore (Cache.access c 0);
  ignore (Cache.access c 0);
  check "hits" 1 (Cache.hits c);
  check "misses" 1 (Cache.misses c);
  Cache.reset_stats c;
  check "reset hits" 0 (Cache.hits c);
  Cache.flush c;
  Alcotest.(check bool) "flush invalidates" true (Cache.access c 0 = Cache.Miss)

let test_cache_lines_spanned () =
  let c = small_cache () in
  check "one line" 1 (Cache.lines_spanned c ~addr:0 ~bytes:32);
  check "two lines" 2 (Cache.lines_spanned c ~addr:16 ~bytes:32);
  check "empty" 0 (Cache.lines_spanned c ~addr:0 ~bytes:0);
  check "exact boundary" 1 (Cache.lines_spanned c ~addr:32 ~bytes:1)

let test_cache_arm926_geometry () =
  (* 16 KiB, 64-way, 32-byte lines: 8 sets. 64 distinct lines in the
     same set all fit; the 65th evicts. *)
  let c = Cache.create Cache.arm926_config in
  for i = 0 to 63 do
    ignore (Cache.access c (i * 8 * 32))
  done;
  Alcotest.(check bool) "all 64 ways hit" true (Cache.access c 0 = Cache.Hit);
  (* Two more distinct lines in the same set evict the two oldest. *)
  ignore (Cache.access c (64 * 8 * 32));
  ignore (Cache.access c (65 * 8 * 32));
  Alcotest.(check bool) "oldest way evicted" true
    (Cache.access c (1 * 8 * 32) = Cache.Miss)

let test_cache_bad_config () =
  Alcotest.check_raises "line not pow2"
    (Invalid_argument "Cache.create: line size must be a power of two")
    (fun () ->
      ignore (Cache.create { Cache.size_bytes = 96; line_bytes = 24; assoc = 2 }))

(* --- Branch predictor --- *)

let test_bpred_warms_up () =
  let b = Branch_pred.create () in
  (* A loop back-edge: mispredicts at most the first couple of times,
     then predicts taken. *)
  ignore (Branch_pred.predict_and_update b ~pc:100 ~taken:true);
  ignore (Branch_pred.predict_and_update b ~pc:100 ~taken:true);
  Alcotest.(check bool) "warm predicts taken" true
    (Branch_pred.predict_and_update b ~pc:100 ~taken:true);
  Alcotest.(check bool) "exit mispredicts once" false
    (Branch_pred.predict_and_update b ~pc:100 ~taken:false)

let test_bpred_static_not_taken () =
  let b = Branch_pred.create () in
  Alcotest.(check bool) "cold not-taken is correct" true
    (Branch_pred.predict_and_update b ~pc:7 ~taken:false)

let test_bpred_aliasing () =
  let b = Branch_pred.create ~entries:4 () in
  (* pc 1 and pc 5 share a slot; training one evicts the other's tag. *)
  ignore (Branch_pred.predict_and_update b ~pc:1 ~taken:true);
  ignore (Branch_pred.predict_and_update b ~pc:1 ~taken:true);
  ignore (Branch_pred.predict_and_update b ~pc:5 ~taken:true);
  (* After the alias stole the slot, pc 1 is cold again. *)
  Alcotest.(check bool) "alias resets" false
    (Branch_pred.predict_and_update b ~pc:1 ~taken:true)

let test_bpred_counters () =
  let b = Branch_pred.create () in
  ignore (Branch_pred.predict_and_update b ~pc:3 ~taken:true);
  check "lookups" 1 (Branch_pred.lookups b);
  Branch_pred.reset_stats b;
  check "reset" 0 (Branch_pred.lookups b)

(* --- Stats --- *)

let test_stats_add () =
  let a = Stats.create () and b = Stats.create () in
  a.Stats.cycles <- 10;
  b.Stats.cycles <- 5;
  b.Stats.scalar_insns <- 3;
  Stats.add a b;
  check "cycles" 15 a.Stats.cycles;
  check "insns" 3 a.Stats.scalar_insns;
  check "total" 3 (Stats.total_insns a);
  Stats.reset a;
  check "reset" 0 a.Stats.cycles

let tests =
  [
    Alcotest.test_case "memory: fresh reads zero" `Quick test_memory_zero_fresh;
    Alcotest.test_case "memory: byte roundtrip" `Quick test_memory_byte_roundtrip;
    Alcotest.test_case "memory: little endian" `Quick test_memory_little_endian;
    Alcotest.test_case "memory: sign extension" `Quick test_memory_sign_extension;
    Alcotest.test_case "memory: negative word" `Quick test_memory_negative_word;
    Alcotest.test_case "memory: page boundary" `Quick test_memory_page_boundary;
    Alcotest.test_case "memory: copy isolation" `Quick test_memory_copy_isolation;
    Alcotest.test_case "memory: equal/diff" `Quick test_memory_equal_and_diff;
    Alcotest.test_case "memory: blit" `Quick test_memory_blit;
    Alcotest.test_case "memory: bad size" `Quick test_memory_bad_size;
    Alcotest.test_case "cache: miss then hit" `Quick test_cache_miss_then_hit;
    Alcotest.test_case "cache: LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache: stats and flush" `Quick test_cache_stats_and_flush;
    Alcotest.test_case "cache: lines spanned" `Quick test_cache_lines_spanned;
    Alcotest.test_case "cache: ARM926 geometry" `Quick test_cache_arm926_geometry;
    Alcotest.test_case "cache: bad config" `Quick test_cache_bad_config;
    Alcotest.test_case "bpred: warms up" `Quick test_bpred_warms_up;
    Alcotest.test_case "bpred: static not taken" `Quick test_bpred_static_not_taken;
    Alcotest.test_case "bpred: aliasing" `Quick test_bpred_aliasing;
    Alcotest.test_case "bpred: counters" `Quick test_bpred_counters;
    Alcotest.test_case "stats: add/reset" `Quick test_stats_add;
  ]
