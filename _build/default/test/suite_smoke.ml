(* End-to-end smoke tests: one binary, every machine flavour, identical
   memory results; translation succeeds and is reused. *)

open Liquid_isa
open Liquid_prog
open Liquid_scalarize
open Helpers
module Cpu = Liquid_pipeline.Cpu

let vadd_loop =
  let open Build in
  {
    Vloop.name = "vadd";
    count = 64;
    body =
      [
        vld (v 1) "a";
        vld (v 2) "b";
        vadd (v 3) (v 1) (vr (v 2));
        vst (v 3) "c";
      ];
    reductions = [];
  }

let vadd_data =
  [
    Data.make ~name:"a" ~esize:Esize.Word (words 64 (fun i -> i * 3));
    Data.make ~name:"b" ~esize:Esize.Word (words 64 (fun i -> 1000 - i));
    Data.zeros ~name:"c" ~esize:Esize.Word 64;
  ]

let expected_c = words 64 (fun i -> (i * 3) + (1000 - i))

let test_baseline_computes () =
  let prog = Codegen.baseline (simple_program ~frames:2 ~data:vadd_data vadd_loop) in
  let run = run_image prog in
  check_arrays "c" expected_c (read_array run prog "c")

let test_liquid_scalar_machine () =
  (* A Liquid binary on a machine with no accelerator and no translator
     still computes correctly through its scalar representation. *)
  let prog = Codegen.liquid (simple_program ~frames:2 ~data:vadd_data vadd_loop) in
  let run = run_image prog in
  check_arrays "c" expected_c (read_array run prog "c");
  Alcotest.(check int) "no vector instructions" 0 run.Cpu.stats.vector_insns

let test_liquid_translated_widths () =
  let prog = Codegen.liquid (simple_program ~frames:4 ~data:vadd_data vadd_loop) in
  List.iter
    (fun lanes ->
      let run = run_image ~config:(Cpu.liquid_config ~lanes) prog in
      check_arrays
        (Printf.sprintf "c at width %d" lanes)
        expected_c (read_array run prog "c");
      Alcotest.(check bool)
        (Printf.sprintf "ucode hits at width %d" lanes)
        true
        (run.Cpu.stats.ucode_hits >= 2);
      Alcotest.(check bool)
        (Printf.sprintf "vector insns at width %d" lanes)
        true
        (run.Cpu.stats.vector_insns > 0))
    [ 2; 4; 8; 16 ]

let test_native_matches () =
  List.iter
    (fun lanes ->
      let prog =
        Codegen.native ~width:lanes
          (simple_program ~frames:2 ~data:vadd_data vadd_loop)
      in
      let run = run_image ~config:(Cpu.native_config ~lanes) prog in
      check_arrays
        (Printf.sprintf "native c at %d" lanes)
        expected_c (read_array run prog "c"))
    [ 2; 4; 8; 16 ]

let test_liquid_faster_with_accel () =
  let prog = Codegen.liquid (simple_program ~frames:8 ~data:vadd_data vadd_loop) in
  let scalar = run_image prog in
  let wide = run_image ~config:(Cpu.liquid_config ~lanes:8) prog in
  Alcotest.(check bool)
    "8-wide runs in fewer cycles" true
    (wide.Cpu.stats.cycles < scalar.Cpu.stats.cycles)

let test_fft_all_flavours () =
  let count = 128 in
  let vprog = simple_program ~name:"fft" ~frames:3 ~data:(fft_data ~count) (fft_loop ~count) in
  let base_prog = Codegen.baseline vprog in
  let base = run_image base_prog in
  let liquid_prog = Codegen.liquid vprog in
  (* Scalar machine. *)
  let run0 = run_image liquid_prog in
  check_memory_equal "liquid-on-scalar vs baseline: RealOut"
    { run0 with Cpu.memory = run0.Cpu.memory }
    run0;
  check_arrays "fft scalar" (read_array base base_prog "RealOut")
    (read_array run0 liquid_prog "RealOut");
  (* Translated at each width. *)
  List.iter
    (fun lanes ->
      let run = run_image ~config:(Cpu.liquid_config ~lanes) liquid_prog in
      check_arrays
        (Printf.sprintf "fft RealOut at width %d" lanes)
        (read_array base base_prog "RealOut")
        (read_array run liquid_prog "RealOut");
      if lanes >= 8 then
        Alcotest.(check bool)
          (Printf.sprintf "fft translated at %d" lanes)
          true
          (run.Cpu.stats.ucode_hits > 0))
    [ 2; 4; 8; 16 ]

let tests =
  [
    Alcotest.test_case "baseline computes" `Quick test_baseline_computes;
    Alcotest.test_case "liquid on scalar machine" `Quick test_liquid_scalar_machine;
    Alcotest.test_case "liquid translated at all widths" `Quick
      test_liquid_translated_widths;
    Alcotest.test_case "native matches" `Quick test_native_matches;
    Alcotest.test_case "liquid faster with accelerator" `Quick
      test_liquid_faster_with_accel;
    Alcotest.test_case "fft example all flavours" `Quick test_fft_all_flavours;
  ]
