(* Unit tests for the vector ISA: widths, permutation patterns, vector
   instruction metadata. *)

open Liquid_isa
open Liquid_visa

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_arr = Alcotest.(check (array int))

(* --- Width --- *)

let test_width_lanes () =
  Alcotest.(check (list int)) "lanes" [ 2; 4; 8; 16 ]
    (List.map Width.lanes Width.all);
  check "max" 16 (Width.lanes Width.max);
  check_bool "of_lanes 8" true (Width.of_lanes 8 = Some Width.W8);
  check_bool "of_lanes 3" true (Width.of_lanes 3 = None)

(* --- Perm --- *)

let test_perm_periods () =
  check "pairswap" 2 (Perm.period Perm.pairswap);
  check "reverse" 8 (Perm.period (Perm.Reverse 8));
  check "rotate" 4 (Perm.period (Perm.Rotate { block = 4; by = 1 }))

let test_perm_well_formed () =
  check_bool "reverse 8" true (Perm.well_formed (Perm.Reverse 8));
  check_bool "reverse 3" false (Perm.well_formed (Perm.Reverse 3));
  check_bool "reverse 32" false (Perm.well_formed (Perm.Reverse 32));
  check_bool "rotate by 0" false
    (Perm.well_formed (Perm.Rotate { block = 4; by = 0 }));
  check_bool "rotate by block" false
    (Perm.well_formed (Perm.Rotate { block = 4; by = 4 }))

let test_perm_apply_reverse () =
  check_arr "reverse 4" [| 3; 2; 1; 0; 7; 6; 5; 4 |]
    (Perm.apply (Perm.Reverse 4) [| 0; 1; 2; 3; 4; 5; 6; 7 |])

let test_perm_apply_halfswap () =
  check_arr "bfly 4" [| 2; 3; 0; 1 |] (Perm.apply (Perm.Halfswap 4) [| 0; 1; 2; 3 |]);
  check_arr "bfly 8 blockwise"
    [| 4; 5; 6; 7; 0; 1; 2; 3; 12; 13; 14; 15; 8; 9; 10; 11 |]
    (Perm.apply (Perm.Halfswap 8) (Array.init 16 (fun i -> i)))

let test_perm_apply_rotate () =
  check_arr "rot 4 by 1" [| 1; 2; 3; 0 |]
    (Perm.apply (Perm.Rotate { block = 4; by = 1 }) [| 0; 1; 2; 3 |]);
  check_arr "pairswap" [| 1; 0; 3; 2 |] (Perm.apply Perm.pairswap [| 0; 1; 2; 3 |])

let test_perm_offsets_consistent () =
  (* dst.(i) = src.(i + offsets.(i mod period)) for every catalog
     pattern at every supported width. *)
  List.iter
    (fun p ->
      List.iter
        (fun lanes ->
          if Perm.supported p ~lanes then begin
            let src = Array.init lanes (fun i -> 100 + i) in
            let dst = Perm.apply p src in
            let offs = Perm.offsets_for p ~lanes in
            Array.iteri
              (fun i d -> check "lane" src.(i + offs.(i)) d)
              dst
          end)
        [ 2; 4; 8; 16 ])
    Perm.catalog

let test_perm_inverse () =
  List.iter
    (fun p ->
      let lanes = Perm.period p in
      let src = Array.init lanes (fun i -> i * 3) in
      check_arr
        (Format.asprintf "%a inverse" Perm.pp p)
        src
        (Perm.apply (Perm.inverse p) (Perm.apply p src)))
    Perm.catalog

let test_perm_cam_roundtrip () =
  (* The CAM identifies every catalog pattern from its tiled offsets. *)
  List.iter
    (fun p ->
      List.iter
        (fun lanes ->
          if Perm.supported p ~lanes then
            match Perm.find_by_offsets (Perm.offsets_for p ~lanes) with
            | Some q ->
                let src = Array.init lanes (fun i -> i) in
                check_arr "same permutation" (Perm.apply p src) (Perm.apply q src)
            | None -> Alcotest.failf "CAM missed %a" Perm.pp p)
        [ 2; 4; 8; 16 ])
    Perm.catalog

let test_perm_cam_miss () =
  check_bool "garbage offsets" true (Perm.find_by_offsets [| 3; 3; 3; 3 |] = None);
  check_bool "identity" true (Perm.find_by_offsets [| 0; 0; 0; 0 |] = None);
  check_bool "wrong length" true (Perm.find_by_offsets [| 1; -1; 1 |] = None)

let test_perm_supported () =
  check_bool "bfly8 at 16" true (Perm.supported (Perm.Halfswap 8) ~lanes:16);
  check_bool "bfly8 at 4" false (Perm.supported (Perm.Halfswap 8) ~lanes:4);
  check_bool "pairswap everywhere" true (Perm.supported Perm.pairswap ~lanes:2)

let test_perm_apply_bad_length () =
  Alcotest.check_raises "length"
    (Invalid_argument "Perm.apply: vector length not a multiple of the period")
    (fun () -> ignore (Perm.apply (Perm.Reverse 4) [| 1; 2; 3 |]))

(* --- Vreg / Vinsn --- *)

let test_vreg_shadow () =
  check "v3 shadows r3" 3 (Vreg.index (Vreg.of_scalar (Reg.make 3)))

let v = Vreg.make
let r = Reg.make

let test_vinsn_metadata () =
  let open Vinsn in
  let vdp : exec = Vdp { op = Opcode.Add; dst = v 1; src1 = v 2; src2 = VR (v 3) } in
  Alcotest.(check (list int)) "vdp defs" [ 1 ]
    (List.map Vreg.index (defs_vector vdp));
  Alcotest.(check (list int)) "vdp uses" [ 2; 3 ]
    (List.map Vreg.index (uses_vector vdp));
  let vred : exec = Vred { op = Opcode.Smin; acc = r 5; src = v 2 } in
  Alcotest.(check (list int)) "vred scalar def" [ 5 ]
    (List.map Reg.index (defs_scalar vred));
  Alcotest.(check (list int)) "vred scalar use" [ 5 ]
    (List.map Reg.index (uses_scalar vred));
  let vld : exec =
    Vld { esize = Esize.Word; signed = true; dst = v 4; base = Insn.Sym 0x200; index = r 0 }
  in
  Alcotest.(check (list int)) "vld scalar uses" [ 0 ]
    (List.map Reg.index (uses_scalar vld))

let test_vinsn_equal () =
  let open Vinsn in
  let a : exec = Vdp { op = Opcode.Mul; dst = v 1; src1 = v 1; src2 = VImm 3 } in
  let b : exec = Vdp { op = Opcode.Mul; dst = v 1; src1 = v 1; src2 = VImm 3 } in
  let c : exec = Vdp { op = Opcode.Mul; dst = v 1; src1 = v 1; src2 = VConst [| 3 |] } in
  check_bool "equal" true (equal_exec a b);
  check_bool "imm vs const" false (equal_exec a c)

let test_vinsn_pp () =
  let open Vinsn in
  let s i = Format.asprintf "%a" pp_asm i in
  Alcotest.(check string) "vld" "vld v1, [x + r0]"
    (s (Vld { esize = Esize.Word; signed = true; dst = v 1; base = Insn.Sym "x"; index = r 0 }));
  Alcotest.(check string) "vqaddub" "vqaddub v1, v2, v3"
    (s (Vsat { op = `Add; esize = Esize.Byte; signed = false; dst = v 1; src1 = v 2; src2 = v 3 }));
  Alcotest.(check string) "vperm" "vperm.bfly.8 v1, v2"
    (s (Vperm { pattern = Perm.Halfswap 8; dst = v 1; src = v 2 }));
  Alcotest.(check string) "vred" "vred.smax r5, v2"
    (s (Vred { op = Opcode.Smax; acc = r 5; src = v 2 }))

let tests =
  [
    Alcotest.test_case "width: lanes" `Quick test_width_lanes;
    Alcotest.test_case "perm: periods" `Quick test_perm_periods;
    Alcotest.test_case "perm: well-formedness" `Quick test_perm_well_formed;
    Alcotest.test_case "perm: reverse" `Quick test_perm_apply_reverse;
    Alcotest.test_case "perm: halfswap" `Quick test_perm_apply_halfswap;
    Alcotest.test_case "perm: rotate" `Quick test_perm_apply_rotate;
    Alcotest.test_case "perm: offsets consistent" `Quick test_perm_offsets_consistent;
    Alcotest.test_case "perm: inverse" `Quick test_perm_inverse;
    Alcotest.test_case "perm: CAM roundtrip" `Quick test_perm_cam_roundtrip;
    Alcotest.test_case "perm: CAM miss" `Quick test_perm_cam_miss;
    Alcotest.test_case "perm: supported widths" `Quick test_perm_supported;
    Alcotest.test_case "perm: bad length" `Quick test_perm_apply_bad_length;
    Alcotest.test_case "vreg: scalar shadow" `Quick test_vreg_shadow;
    Alcotest.test_case "vinsn: metadata" `Quick test_vinsn_metadata;
    Alcotest.test_case "vinsn: equality" `Quick test_vinsn_equal;
    Alcotest.test_case "vinsn: pretty printing" `Quick test_vinsn_pp;
  ]

let test_catalog_tilings_distinct () =
  (* The CAM can only be unambiguous if every catalog pattern tiles to a
     distinct offset vector at every supported width. *)
  List.iter
    (fun lanes ->
      let tilings =
        List.filter_map
          (fun p ->
            if Perm.supported p ~lanes then
              Some (Array.to_list (Perm.offsets_for p ~lanes))
            else None)
          Perm.catalog
      in
      check
        (Printf.sprintf "distinct at %d lanes" lanes)
        (List.length tilings)
        (List.length (List.sort_uniq compare tilings)))
    [ 2; 4; 8; 16 ]

let tests =
  tests
  @ [
      Alcotest.test_case "perm: catalog tilings distinct" `Quick
        test_catalog_tilings_distinct;
    ]
