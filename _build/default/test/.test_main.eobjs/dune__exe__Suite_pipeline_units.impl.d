test/suite_pipeline_units.ml: Abort Alcotest Array Cond Event Format Insn Liquid_isa Liquid_pipeline Liquid_prog Liquid_scalarize Liquid_translate List Offline Reg Translator Ucode Ucode_cache Vec
