test/suite_machine.ml: Alcotest Branch_pred Bytes Cache Char Liquid_machine List Memory Stats
