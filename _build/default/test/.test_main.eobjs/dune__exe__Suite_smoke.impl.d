test/suite_smoke.ml: Alcotest Build Codegen Data Esize Helpers Liquid_isa Liquid_pipeline Liquid_prog Liquid_scalarize List Printf Vloop
