test/suite_sem.ml: Alcotest Array Cond Esize Flags Insn Liquid_isa Liquid_machine Liquid_pipeline Liquid_visa Opcode Perm Reg Sem Vinsn Vreg
