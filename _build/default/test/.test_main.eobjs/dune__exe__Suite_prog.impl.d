test/suite_prog.ml: Alcotest Array Cond Data Disasm Encode Esize Image Insn Liquid_isa Liquid_machine Liquid_prog Liquid_scalarize Liquid_visa List Minsn Opcode Program Reg String Vinsn Vreg
