test/suite_isa.ml: Alcotest Cond Esize Flags Format Insn Liquid_isa List Opcode Reg Word
