test/helpers.ml: Alcotest Array Build Data Esize Image Liquid_isa Liquid_machine Liquid_pipeline Liquid_prog Liquid_scalarize Liquid_translate List Printf Program Vloop
