test/suite_visa.ml: Alcotest Array Esize Format Insn Liquid_isa Liquid_visa List Opcode Perm Printf Reg Vinsn Vreg Width
