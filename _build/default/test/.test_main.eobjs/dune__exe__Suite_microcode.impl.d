test/suite_microcode.ml: Abort Alcotest Array Image Liquid_pipeline Liquid_prog Liquid_scalarize Liquid_translate Liquid_visa Liquid_workloads List Offline Printf Translator Ucode Vinsn Workload
