test/suite_parse.ml: Alcotest Array Build Codegen Cond Data Esize Helpers Liquid_isa Liquid_pipeline Liquid_prog Liquid_scalarize Liquid_visa List Minsn Opcode Parse Program
