test/suite_harness.ml: Alcotest Experiments Float Liquid_harness Liquid_hwmodel Liquid_workloads List Runner String Workload
