(* Per-benchmark microcode regression: every region of every workload
   translates offline at 8 lanes, fits the buffer, is no larger than its
   scalar source, and contains the vector operations its kernel shape
   implies. *)

open Liquid_prog
open Liquid_visa
open Liquid_pipeline
open Liquid_translate
open Liquid_workloads

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let translated_regions (w : Workload.t) ~lanes =
  let image = Image.of_program (Liquid_scalarize.Codegen.liquid w.program) in
  List.map
    (fun (entry, label, result) ->
      match result with
      | Translator.Translated u -> (label, u)
      | Translator.Aborted reason ->
          Alcotest.failf "%s region %s (entry %d) aborted: %s" w.name label
            entry (Abort.to_string reason))
    (Offline.translate_all ~image ~lanes ())

let count_uops pred (u : Ucode.t) =
  Array.fold_left (fun n uop -> if pred uop then n + 1 else n) 0 u.Ucode.uops

let is_v pred = function Ucode.UV v -> pred v | _ -> false

let microcode_invariants (w : Workload.t) () =
  let sizes = Liquid_scalarize.Codegen.outlined_sizes w.program in
  List.iter
    (fun (label, u) ->
      let static = List.assoc label sizes in
      check_bool
        (Printf.sprintf "%s/%s fits buffer" w.name label)
        true
        (Ucode.length u <= 64);
      (* Microcode is never larger than its scalar source (idioms and
         offset loads collapse; pass-through is 1:1; the only additions
         are the return and scatter permutes). *)
      check_bool
        (Printf.sprintf "%s/%s no larger than scalar (%d vs %d)" w.name label
           (Ucode.length u) (static + 1))
        true
        (Ucode.length u <= static + 1);
      (* Exactly one back-edge and one return. *)
      check (Printf.sprintf "%s/%s one back-edge" w.name label) 1
        (count_uops (function Ucode.UB _ -> true | _ -> false) u);
      check (Printf.sprintf "%s/%s one return" w.name label) 1
        (count_uops (function Ucode.URet -> true | _ -> false) u);
      (* Width divides the compiled maximum. *)
      check_bool
        (Printf.sprintf "%s/%s width" w.name label)
        true
        (List.mem u.Ucode.width [ 2; 4; 8 ]))
    (translated_regions w ~lanes:8)

let shape_expectations () =
  let has name pred =
    let w = match Workload.find name with Some w -> w | None -> assert false in
    List.exists (fun (_, u) -> count_uops pred u > 0) (translated_regions w ~lanes:8)
  in
  check_bool "MPEG2 Dec. uses saturating adds" true
    (has "MPEG2 Dec." (is_v (function Vinsn.Vsat _ -> true | _ -> false)));
  check_bool "GSM Dec. uses saturating adds" true
    (has "GSM Dec." (is_v (function Vinsn.Vsat _ -> true | _ -> false)));
  check_bool "FFT uses permutations" true
    (has "FFT" (is_v (function Vinsn.Vperm _ -> true | _ -> false)));
  check_bool "171.swim uses permutations" true
    (has "171.swim" (is_v (function Vinsn.Vperm _ -> true | _ -> false)));
  check_bool "052.alvinn uses reductions" true
    (has "052.alvinn" (is_v (function Vinsn.Vred _ -> true | _ -> false)));
  check_bool "GSM Enc. uses reductions" true
    (has "GSM Enc." (is_v (function Vinsn.Vred _ -> true | _ -> false)));
  check_bool "104.hydro2d folds masks to constants" true
    (has "104.hydro2d"
       (is_v (function Vinsn.Vdp { src2 = VConst _; _ } -> true | _ -> false)))

let tests =
  List.map
    (fun (w : Workload.t) ->
      Alcotest.test_case
        (Printf.sprintf "%s microcode invariants" w.name)
        `Quick (microcode_invariants w))
    (Workload.all ())
  @ [ Alcotest.test_case "kernel-shape expectations" `Quick shape_expectations ]
