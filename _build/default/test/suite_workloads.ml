(* The benchmark correctness sweep: every workload must compute the same
   memory state under every binary/machine combination — scalar baseline,
   Liquid binary on a scalar machine, Liquid binary translated at every
   width, oracle mode, and native binaries where they exist. This is the
   central soundness claim of the system: translation is semantics-
   preserving and aborts fail safe. *)

open Liquid_prog
open Liquid_pipeline
open Liquid_harness
open Liquid_workloads
module Stats = Liquid_machine.Stats
module Memory = Liquid_machine.Memory

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Compare the data arrays the two programs share by name (their layout
   is identical within a flavour but code/data addresses of baseline and
   liquid programs coincide here because layout only depends on data). *)
let output_arrays (w : Workload.t) =
  List.map (fun (d : Liquid_prog.Data.t) -> d.Data.name) w.program.Liquid_scalarize.Vloop.data

let array_values program (run : Cpu.run) name =
  let img = Image.of_program program in
  let addr = Image.array_addr img name in
  match Program.find_data program name with
  | None -> [||]
  | Some d ->
      let b = Liquid_isa.Esize.bytes d.Data.esize in
      Array.init (Array.length d.Data.values) (fun i ->
          Memory.read run.Cpu.memory ~addr:(addr + (i * b)) ~bytes:b ~signed:true)

let compare_runs (w : Workload.t) (ref_res : Runner.result) (res : Runner.result) =
  List.iter
    (fun name ->
      let expected = array_values ref_res.Runner.program ref_res.Runner.run name in
      let got = array_values res.Runner.program res.Runner.run name in
      if expected <> got then
        Alcotest.failf "%s: array %s differs between %s and %s" w.name name
          (Runner.variant_name ref_res.Runner.variant)
          (Runner.variant_name res.Runner.variant))
    (output_arrays w)

let sweep_workload (w : Workload.t) () =
  let base = Runner.run w Runner.Baseline in
  compare_runs w base (Runner.run w Runner.Liquid_scalar);
  List.iter
    (fun lanes ->
      compare_runs w base (Runner.run w (Runner.Liquid lanes));
      compare_runs w base (Runner.run w (Runner.Liquid_oracle lanes));
      match Runner.run w (Runner.Native lanes) with
      | res -> compare_runs w base res
      | exception Liquid_scalarize.Codegen.Unsupported_width _ -> ())
    [ 2; 4; 8; 16 ]

let test_all_translate_at_8 () =
  (* At 8 lanes every benchmark must get real SIMD execution. *)
  List.iter
    (fun (w : Workload.t) ->
      let { Runner.run; _ } = Runner.run w (Runner.Liquid 8) in
      check_bool (w.name ^ " has ucode hits") true (run.Cpu.stats.Stats.ucode_hits > 0);
      check_bool (w.name ^ " executes vector instructions") true
        (run.Cpu.stats.Stats.vector_insns > 0))
    (Workload.all ())

let test_no_unexpected_aborts_at_8 () =
  List.iter
    (fun (w : Workload.t) ->
      let { Runner.run; _ } = Runner.run w (Runner.Liquid 8) in
      List.iter
        (fun (r : Cpu.region_report) ->
          match r.Cpu.outcome with
          | Cpu.R_installed _ -> ()
          | Cpu.R_failed reason ->
              Alcotest.failf "%s region %s aborted: %s" w.name r.Cpu.label
                (Liquid_translate.Abort.to_string reason)
          | Cpu.R_untried ->
              Alcotest.failf "%s region %s never translated" w.name r.Cpu.label)
        run.Cpu.regions)
    (Workload.all ())

let test_registry_complete () =
  check "fifteen benchmarks" 15 (List.length (Workload.all ()));
  check "eight SPECfp" 8
    (List.length (List.filter (fun w -> w.Workload.suite = Workload.Specfp) (Workload.all ())));
  check "four MediaBench" 4
    (List.length
       (List.filter (fun w -> w.Workload.suite = Workload.Mediabench) (Workload.all ())));
  check "three kernels" 3
    (List.length (List.filter (fun w -> w.Workload.suite = Workload.Kernel) (Workload.all ())));
  check_bool "find works" true (Workload.find "FIR" <> None);
  check_bool "find misses" true (Workload.find "nope" = None)

let test_loop_counts_match_paper () =
  (* The number of outlined loops per benchmark matches Table 6's loop
     counts (the sum of its three distance buckets). GSM Enc. is exempt:
     the paper's own tables disagree there (Table 5 reports distinct
     mean and max sizes, implying at least two loops, while Table 6
     lists one); we model two. *)
  List.iter
    (fun (w : Workload.t) ->
      if w.name <> "GSM Enc." then begin
        let measured =
          List.length (Liquid_scalarize.Codegen.outlined_sizes w.program)
        in
        let paper =
          w.paper.Workload.table6_lt150 + w.paper.Workload.table6_lt300
          + w.paper.Workload.table6_gt300
        in
        check (w.name ^ " loop count") paper measured
      end)
    (Workload.all ())

let test_programs_validate () =
  List.iter
    (fun (w : Workload.t) ->
      match Liquid_scalarize.Vloop.validate_program w.program with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" w.name m)
    (Workload.all ())

let test_buffer_limit_respected () =
  List.iter
    (fun (w : Workload.t) ->
      List.iter
        (fun (label, n) ->
          check_bool
            (Printf.sprintf "%s %s fits the buffer (%d)" w.name label n)
            true (n <= 64))
        (Liquid_scalarize.Codegen.outlined_sizes w.program))
    (Workload.all ())

let tests =
  List.map
    (fun (w : Workload.t) ->
      Alcotest.test_case
        (Printf.sprintf "%s: all flavours agree" w.name)
        `Slow (sweep_workload w))
    (Workload.all ())
  @ [
      Alcotest.test_case "all benchmarks translate at 8 lanes" `Slow
        test_all_translate_at_8;
      Alcotest.test_case "no unexpected aborts at 8 lanes" `Slow
        test_no_unexpected_aborts_at_8;
      Alcotest.test_case "registry complete" `Quick test_registry_complete;
      Alcotest.test_case "loop counts match paper" `Quick
        test_loop_counts_match_paper;
      Alcotest.test_case "programs validate" `Quick test_programs_validate;
      Alcotest.test_case "buffer limit respected" `Quick test_buffer_limit_respected;
    ]

(* --- cache-behaviour intent: the memory system sees what the paper's
   discussion of Figure 6 describes --- *)

let test_cache_behaviour_matches_intent () =
  let miss_rate name =
    let w = match Workload.find name with Some w -> w | None -> assert false in
    let { Runner.run; _ } = Runner.run w Runner.Baseline in
    let s = run.Cpu.stats in
    float_of_int s.Stats.dcache_misses
    /. float_of_int (max 1 (s.Stats.dcache_hits + s.Stats.dcache_misses))
  in
  let art = miss_rate "179.art" and fir = miss_rate "FIR" in
  check_bool "art misses a lot" true (art > 0.20);
  check_bool "FIR is cache resident" true (fir < 0.02);
  check_bool "art markedly worse than FIR" true (art > 10.0 *. fir)

let tests =
  tests
  @ [
      Alcotest.test_case "cache behaviour matches intent" `Slow
        test_cache_behaviour_matches_intent;
    ]
