(* Unit tests for programs, layout and binary encoding. *)

open Liquid_isa
open Liquid_visa
open Liquid_prog
module Memory = Liquid_machine.Memory

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let r = Reg.make
let v = Vreg.make

let sample_program () =
  let open Liquid_scalarize.Build in
  Program.make ~name:"sample"
    ~text:
      [
        Program.Label "main";
        mov (r 1) 0;
        label "loop";
        ld (r 2) "xs" (ri (r 1));
        dp Opcode.Add (r 3) (r 3) (ri (r 2));
        addi (r 1) (r 1) 1;
        cmp (r 1) (i 4);
        b ~cond:Cond.Lt "loop";
        st (r 3) "sum" (i 0);
        halt;
      ]
    ~data:
      [
        Data.make ~name:"xs" ~esize:Esize.Word [| 10; 20; 30; 40 |];
        Data.zeros ~name:"sum" ~esize:Esize.Word 1;
      ]

(* --- Program --- *)

let test_program_validate_ok () =
  check_bool "valid" true (Program.validate (sample_program ()) = Ok ())

let test_program_validate_failures () =
  let open Liquid_scalarize.Build in
  let expect_err text data msg =
    match Program.validate (Program.make ~name:"bad" ~text ~data) with
    | Error m -> Alcotest.(check string) "message" msg m
    | Ok () -> Alcotest.fail "expected validation failure"
  in
  expect_err [ b "nowhere" ] [] "undefined label nowhere";
  expect_err [ ld (r 1) "ghost" (i 0) ] [] "undefined data symbol ghost";
  expect_err
    [ Program.Label "a"; Program.Label "a" ]
    [] "duplicate label a";
  expect_err []
    [ Data.zeros ~name:"d" ~esize:Esize.Word 1; Data.zeros ~name:"d" ~esize:Esize.Byte 1 ]
    "duplicate data array d"

let test_program_scalar_only () =
  check_bool "scalar" true (Program.scalar_only (sample_program ()));
  let with_vec =
    Program.make ~name:"vec"
      ~text:[ Program.I (Minsn.V (Vinsn.Vdp { op = Opcode.Add; dst = v 1; src1 = v 1; src2 = VImm 0 })) ]
      ~data:[]
  in
  check_bool "vector" false (Program.scalar_only with_vec)

let test_program_append_data () =
  let p = sample_program () in
  let p2 = Program.append_data p [ Data.zeros ~name:"extra" ~esize:Esize.Byte 8 ] in
  check "arrays" 3 (List.length p2.Program.data);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Program.append_data: duplicate array xs") (fun () ->
      ignore (Program.append_data p [ Data.zeros ~name:"xs" ~esize:Esize.Word 1 ]))

(* --- Data --- *)

let test_data_truncation () =
  let d = Data.make ~name:"d" ~esize:Esize.Byte [| 300; -1; 127 |] in
  Alcotest.(check (array int)) "truncated" [| 44; -1; 127 |] d.Data.values;
  check "byte size" 3 (Data.byte_size d);
  check "alignment" 16 (Data.alignment d)

let test_data_word_alignment () =
  let d = Data.zeros ~name:"w" ~esize:Esize.Word 4 in
  check "word alignment is 64" 64 (Data.alignment d)

(* --- Image --- *)

let test_image_layout () =
  let img = Image.of_program (sample_program ()) in
  check "entry" 0 img.Image.entry;
  check "code length" 8 (Array.length img.Image.code);
  check_bool "loop label" true (Image.find_label img "loop" = Some 1);
  let xs = Image.array_addr img "xs" in
  let sum = Image.array_addr img "sum" in
  check_bool "xs at data base" true (xs = Image.data_base);
  (* sum must start above xs and respect max-width alignment *)
  check "sum aligned" 0 (sum mod 64);
  check_bool "sum after xs" true (sum >= xs + 16);
  check "addr of insn 3" (Image.code_base + 12) (Image.addr_of_index img 3);
  check "index of addr" 3 (Image.index_of_addr img (Image.code_base + 12))

let test_image_resolution () =
  let img = Image.of_program (sample_program ()) in
  (match img.Image.code.(1) with
  | Minsn.S (Insn.Ld { base = Insn.Sym addr; _ }) ->
      check "resolved base" (Image.array_addr img "xs") addr
  | _ -> Alcotest.fail "expected resolved load");
  match img.Image.code.(5) with
  | Minsn.S (Insn.B { target; _ }) -> check "resolved branch" 1 target
  | _ -> Alcotest.fail "expected resolved branch"

let test_image_load_memory () =
  let img = Image.of_program (sample_program ()) in
  let mem = Memory.create () in
  Image.load_memory img mem;
  let xs = Image.array_addr img "xs" in
  check "xs[0]" 10 (Memory.read mem ~addr:xs ~bytes:4 ~signed:true);
  check "xs[3]" 40 (Memory.read mem ~addr:(xs + 12) ~bytes:4 ~signed:true)

let test_image_region_entries () =
  let open Liquid_scalarize.Build in
  let p =
    Program.make ~name:"regions"
      ~text:
        [
          Program.Label "main";
          bl_region "f";
          bl "g";
          halt;
          Program.Label "f";
          ret;
          Program.Label "g";
          ret;
        ]
      ~data:[]
  in
  let img = Image.of_program p in
  check "one region" 1 (List.length img.Image.region_entries);
  (match img.Image.region_entries with
  | [ (entry, label) ] ->
      Alcotest.(check string) "label" "f" label;
      check "entry index" 3 entry
  | _ -> Alcotest.fail "region entries");
  check_bool "array_at finds nothing in code" true (Image.array_at img 0x1000 = None)

let test_image_array_at () =
  let img = Image.of_program (sample_program ()) in
  let xs = Image.array_addr img "xs" in
  (match Image.array_at img (xs + 5) with
  | Some (name, _) -> Alcotest.(check string) "name" "xs" name
  | None -> Alcotest.fail "array_at missed");
  check_bool "past end" true (Image.array_at img (xs + 1_000_000) = None)

let test_image_layout_error () =
  let open Liquid_scalarize.Build in
  let p = Program.make ~name:"bad" ~text:[ b "nope" ] ~data:[] in
  check_bool "raises" true
    (try
       ignore (Image.of_program p);
       false
     with Image.Layout_error _ -> true)

(* --- Encode --- *)

let roundtrip insns =
  let enc = Encode.encode (Array.of_list insns) in
  Array.to_list (Encode.decode enc)

let test_encode_scalar_roundtrip () =
  let open Insn in
  let insns : Minsn.exec list =
    [
      Minsn.S (Mov { cond = Cond.Al; dst = r 1; src = Imm 5 });
      Minsn.S (Mov { cond = Cond.Gt; dst = r 2; src = Imm (-8000) });
      Minsn.S (Mov { cond = Cond.Al; dst = r 3; src = Imm 1_000_000 });
      Minsn.S (Mov { cond = Cond.Ne; dst = r 4; src = Reg (r 5) });
      Minsn.S (Dp { cond = Cond.Al; op = Opcode.Add; dst = r 1; src1 = r 2; src2 = Reg (r 3) });
      Minsn.S (Dp { cond = Cond.Lt; op = Opcode.Smax; dst = r 1; src1 = r 2; src2 = Imm (-3) });
      Minsn.S (Dp { cond = Cond.Al; op = Opcode.Mul; dst = r 1; src1 = r 2; src2 = Imm 123_456 });
      Minsn.S (Ld { esize = Esize.Byte; signed = true; dst = r 6; base = Sym 0x100000; index = Reg (r 0); shift = 0 });
      Minsn.S (Ld { esize = Esize.Word; signed = true; dst = r 7; base = Breg (r 8); index = Imm 40; shift = 2 });
      Minsn.S (Ld { esize = Esize.Half; signed = false; dst = r 9; base = Sym 0x100040; index = Imm 100_000; shift = 1 });
      Minsn.S (St { esize = Esize.Word; src = r 10; base = Sym 0x100080; index = Reg (r 13); shift = 2 });
      Minsn.S (Cmp { src1 = r 1; src2 = Imm 128 });
      Minsn.S (Cmp { src1 = r 1; src2 = Reg (r 2) });
      Minsn.S (B { cond = Cond.Lt; target = 2 });
      Minsn.S (Bl { target = 100; region = true });
      Minsn.S (Bl { target = 101; region = false });
      Minsn.S Ret;
      Minsn.S Halt;
    ]
  in
  List.iteri
    (fun k (a, b) ->
      if not (Minsn.equal_exec a b) then
        Alcotest.failf "instruction %d did not roundtrip: %a vs %a" k
          Minsn.pp_exec a Minsn.pp_exec b)
    (List.combine insns (roundtrip insns))

let test_encode_vector_roundtrip () =
  let open Vinsn in
  let insns : Minsn.exec list =
    [
      Minsn.V (Vld { esize = Esize.Word; signed = true; dst = v 1; base = Insn.Sym 0x100000; index = r 0 });
      Minsn.V (Vst { esize = Esize.Byte; src = v 2; base = Insn.Sym 0x100040; index = r 0 });
      Minsn.V (Vdp { op = Opcode.Add; dst = v 3; src1 = v 4; src2 = VR (v 5) });
      Minsn.V (Vdp { op = Opcode.Mul; dst = v 3; src1 = v 4; src2 = VImm (-7) });
      Minsn.V (Vdp { op = Opcode.And; dst = v 3; src1 = v 4; src2 = VImm 999_999 });
      Minsn.V (Vdp { op = Opcode.Orr; dst = v 3; src1 = v 4; src2 = VConst [| 1; -1; 0; 42 |] });
      Minsn.V (Vsat { op = `Add; esize = Esize.Byte; signed = false; dst = v 1; src1 = v 2; src2 = v 3 });
      Minsn.V (Vsat { op = `Sub; esize = Esize.Half; signed = true; dst = v 1; src1 = v 2; src2 = v 3 });
      Minsn.V (Vperm { pattern = Liquid_visa.Perm.Halfswap 8; dst = v 6; src = v 7 });
      Minsn.V (Vperm { pattern = Liquid_visa.Perm.Rotate { block = 4; by = 3 }; dst = v 6; src = v 7 });
      Minsn.V (Vred { op = Opcode.Smin; acc = r 5; src = v 8 });
    ]
  in
  List.iteri
    (fun k (a, b) ->
      if not (Minsn.equal_exec a b) then
        Alcotest.failf "vector instruction %d did not roundtrip" k)
    (List.combine insns (roundtrip insns))

let test_encode_pool_dedup () =
  let open Insn in
  let big = 1_000_000 in
  let insns =
    Array.of_list
      [
        Minsn.S (Mov { cond = Cond.Al; dst = r 1; src = Imm big });
        Minsn.S (Mov { cond = Cond.Al; dst = r 2; src = Imm big });
        Minsn.S (Cmp { src1 = r 1; src2 = Imm big });
      ]
  in
  let enc = Encode.encode insns in
  check "one pooled literal" 1 (Array.length enc.Encode.pool)

let test_encode_vconst_dedup () =
  let open Vinsn in
  let c = [| 5; 6; 7; 8 |] in
  let mk () = Minsn.V (Vdp { op = Opcode.Add; dst = v 1; src1 = v 2; src2 = VConst (Array.copy c) }) in
  let enc = Encode.encode [| mk (); mk () |] in
  check "length header + 4 values" 5 (Array.length enc.Encode.pool)

let test_encode_inline_no_pool () =
  let open Insn in
  let enc =
    Encode.encode
      [| Minsn.S (Mov { cond = Cond.Al; dst = r 1; src = Imm 100 }) |]
  in
  check "no pool" 0 (Array.length enc.Encode.pool)

let test_encode_branch_range () =
  let open Insn in
  Alcotest.check_raises "target too big"
    (Encode.Encode_error "branch target out of range") (fun () ->
      ignore
        (Encode.encode
           [| Minsn.S (B { cond = Cond.Al; target = 1 lsl 24 }) |]))

let test_size_bytes () =
  let img = Image.of_program (sample_program ()) in
  (* 9 instructions, one pooled literal (xs base; sum base; bound 4 is
     inline): words + pool + data *)
  let sz = Encode.size_bytes img in
  check_bool "size includes data" true (sz >= (9 * 4) + 20);
  check_bool "size is modest" true (sz < 200)

let tests =
  [
    Alcotest.test_case "program: validate ok" `Quick test_program_validate_ok;
    Alcotest.test_case "program: validate failures" `Quick test_program_validate_failures;
    Alcotest.test_case "program: scalar only" `Quick test_program_scalar_only;
    Alcotest.test_case "program: append data" `Quick test_program_append_data;
    Alcotest.test_case "data: truncation" `Quick test_data_truncation;
    Alcotest.test_case "data: word alignment" `Quick test_data_word_alignment;
    Alcotest.test_case "image: layout" `Quick test_image_layout;
    Alcotest.test_case "image: symbol resolution" `Quick test_image_resolution;
    Alcotest.test_case "image: load memory" `Quick test_image_load_memory;
    Alcotest.test_case "image: region entries" `Quick test_image_region_entries;
    Alcotest.test_case "image: array_at" `Quick test_image_array_at;
    Alcotest.test_case "image: layout error" `Quick test_image_layout_error;
    Alcotest.test_case "encode: scalar roundtrip" `Quick test_encode_scalar_roundtrip;
    Alcotest.test_case "encode: vector roundtrip" `Quick test_encode_vector_roundtrip;
    Alcotest.test_case "encode: pool dedup" `Quick test_encode_pool_dedup;
    Alcotest.test_case "encode: vconst dedup" `Quick test_encode_vconst_dedup;
    Alcotest.test_case "encode: inline immediates" `Quick test_encode_inline_no_pool;
    Alcotest.test_case "encode: branch range" `Quick test_encode_branch_range;
    Alcotest.test_case "encode: size bytes" `Quick test_size_bytes;
  ]

(* --- malformed binaries --- *)

let test_decode_bad_words () =
  let bad major =
    let word = major lsl 27 in
    try
      ignore (Encode.decode { Encode.words = [| word |]; pool = [||] });
      false
    with Encode.Encode_error _ -> true
  in
  check_bool "bad major 31" true (bad 31);
  check_bool "bad major 9" true (bad 9);
  (* An out-of-range pool index in a load. *)
  let word = (2 lsl 27) lor (0 lsl 19) lor (200 lsl 11) in
  check_bool "pool index out of range" true
    (try
       ignore (Encode.decode { Encode.words = [| word |]; pool = [| 1 |] });
       false
     with Encode.Encode_error _ -> true)

let test_disasm_plain () =
  (* Without an image, the listing still renders every instruction. *)
  let open Insn in
  let enc =
    Encode.encode
      [|
        Minsn.S (Mov { cond = Cond.Al; dst = r 1; src = Imm 3 });
        Minsn.S Halt;
      |]
  in
  let text = Disasm.listing enc in
  check_bool "mov rendered" true
    (String.length text > 0
    &&
    let has needle =
      let nl = String.length needle and tl = String.length text in
      let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
      go 0
    in
    has "mov r1, #3" && has "halt")

let tests =
  tests
  @ [
      Alcotest.test_case "decode rejects malformed words" `Quick
        test_decode_bad_words;
      Alcotest.test_case "disassembler without image" `Quick test_disasm_plain;
    ]
