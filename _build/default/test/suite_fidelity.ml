(* Paper-fidelity test: Figure 4(B)'s first scalar loop, written out
   instruction by instruction as in the paper, must translate into the
   SIMD sequence of Table 4 (adapted to this ISA: vmask appears as a
   vand with a reconstructed constant vector; the store-side butterfly
   permutes through the scratch vector register). *)

open Liquid_isa
open Liquid_visa
open Liquid_prog
open Liquid_scalarize
open Liquid_translate
open Helpers
open Build

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let n = 128
let ind = Vloop.induction

(* Figure 4(B), lines 1-23 (first fissioned loop), with the paper's
   register assignments: f0..f6 are r1..r6 here, r0 the induction, the
   offset/mask temporaries in r13 as our scalarizer emits them. *)
let figure4b_loop1 =
  [
    mov ind 0;
    label "f_top";
    (* ld r1, [bfly + r0]; add r1, r0, r1; ld f0, [RealOut + r1] *)
    ld (r 13) "bfly" (ri ind);
    dp Opcode.Add (r 13) ind (ri (r 13));
    ld (r 1) "RealOut" (ri (r 13));
    (* same shuffle for ImagOut *)
    ld (r 13) "bfly" (ri ind);
    dp Opcode.Add (r 13) ind (ri (r 13));
    ld (r 2) "ImagOut" (ri (r 13));
    (* ld f2, [ar + r0]; ld f3, [ai + r0] *)
    ld (r 3) "ar" (ri ind);
    ld (r 4) "ai" (ri ind);
    (* mult f2, f2, f0; mult f3, f3, f1; sub f6, f2, f3 *)
    dp Opcode.Mul (r 3) (r 3) (ri (r 1));
    dp Opcode.Mul (r 4) (r 4) (ri (r 2));
    dp Opcode.Sub (r 6) (r 3) (ri (r 4));
    (* ld f5, [RealOut + r0]; sub f3, f5, f6; add f4, f5, f6 *)
    ld (r 5) "RealOut" (ri ind);
    dp Opcode.Sub (r 7) (r 5) (ri (r 6));
    dp Opcode.Add (r 8) (r 5) (ri (r 6));
    (* ld r2, [mask + r0]; and f3, f3, r2; and f4, f4, r2 *)
    ld (r 9) "mask" (ri ind);
    dp Opcode.And (r 7) (r 7) (ri (r 9));
    dp Opcode.And (r 8) (r 8) (ri (r 9));
    (* butterflied store of f3 into tmp0; plain store of f4 into tmp1 *)
    ld (r 13) "bfly" (ri ind);
    dp Opcode.Add (r 13) ind (ri (r 13));
    st (r 7) "tmp0" (ri (r 13));
    st (r 8) "tmp1" (ri ind);
    (* add r0, r0, #1; cmp r0, #128; blt *)
    addi ind ind 1;
    cmp ind (i n);
    b ~cond:Cond.Lt "f_top";
  ]

let data =
  let bfly_offs = Perm.offsets (Perm.Halfswap 8) in
  [
    Data.make ~name:"bfly" ~esize:Esize.Word
      (Array.init n (fun e -> bfly_offs.(e mod 8)));
    Data.make ~name:"mask" ~esize:Esize.Word
      (Array.init n (fun e -> if e mod 8 < 4 then 0 else -1));
    Data.make ~name:"RealOut" ~esize:Esize.Word (Array.init n (fun i -> (i * 7) - 100));
    Data.make ~name:"ImagOut" ~esize:Esize.Word (Array.init n (fun i -> (i * 3) + 11));
    Data.make ~name:"ar" ~esize:Esize.Word (Array.init n (fun i -> i mod 9));
    Data.make ~name:"ai" ~esize:Esize.Word (Array.init n (fun i -> 5 - (i mod 4)));
    Data.zeros ~name:"tmp0" ~esize:Esize.Word n;
    Data.zeros ~name:"tmp1" ~esize:Esize.Word n;
  ]

let count_uops pred (u : Ucode.t) =
  Array.fold_left (fun acc uop -> if pred uop then acc + 1 else acc) 0 u.Ucode.uops

let test_table4_structure () =
  let u = expect_ucode ~lanes:8 ~data figure4b_loop1 "figure 4(B)" in
  check "width" 8 u.Ucode.width;
  (* Table 4's output for the loop:
     - two vld+vbfly pairs (RealOut, ImagOut) with their offset loads
       removed;
     - plain vlds of ar, ai, RealOut and mask;
     - 2 vmult, 2 vsub, 1 vadd, 2 vmask (vand-with-constant here);
     - a store-side vbfly and two vector stores;
     - mov/add#8/cmp/blt/ret scalar control. *)
  check "data loads" 5 (count_uops (function Ucode.UV (Vinsn.Vld _) -> true | _ -> false) u);
  check "permutations" 3
    (count_uops
       (function
         | Ucode.UV (Vinsn.Vperm { pattern = Perm.Halfswap 8; _ }) -> true
         | _ -> false)
       u);
  check "multiplies" 2
    (count_uops
       (function Ucode.UV (Vinsn.Vdp { op = Opcode.Mul; _ }) -> true | _ -> false)
       u);
  check "subtracts" 2
    (count_uops
       (function Ucode.UV (Vinsn.Vdp { op = Opcode.Sub; _ }) -> true | _ -> false)
       u);
  check "masks folded to constants" 2
    (count_uops
       (function
         | Ucode.UV (Vinsn.Vdp { op = Opcode.And; src2 = VConst _; _ }) -> true
         | _ -> false)
       u);
  check "stores" 2 (count_uops (function Ucode.UV (Vinsn.Vst _) -> true | _ -> false) u);
  (* The mask load dies after both consumers fold (Table 4 keeps it; the
     alignment-network collapse in this implementation removes it, as it
     does the two offset loads). *)
  check_bool "induction step rewritten" true
    (Array.exists
       (function
         | Ucode.US (Insn.Dp { op = Opcode.Add; src2 = Insn.Imm 8; _ }) -> true
         | _ -> false)
       u.Ucode.uops);
  (* Store-side butterfly goes through the scratch register v15. *)
  check_bool "scatter through scratch" true
    (Array.exists
       (function
         | Ucode.UV (Vinsn.Vperm { dst; _ }) -> Vreg.index dst = 15
         | _ -> false)
       u.Ucode.uops)

let test_figure4b_semantics () =
  (* Execute the paper's scalar loop and the translated microcode; the
     memory images must agree (the FFT becomes SIMD without changing its
     meaning). *)
  let prog =
    Program.make ~name:"fig4b"
      ~text:
        ((Program.Label "main" :: bl_region "f" :: [ halt ])
        @ (Program.Label "f" :: figure4b_loop1)
        @ [ ret ])
      ~data
  in
  (* Run twice so the second call is served from microcode. *)
  let prog2 =
    Program.make ~name:"fig4b2"
      ~text:
        ((Program.Label "main" :: mov (r 15) 0 :: Program.Label "fr"
          :: bl_region "f"
          :: [ addi (r 15) (r 15) 1; cmp (r 15) (i 2); b ~cond:Cond.Lt "fr"; halt ])
        @ (Program.Label "f" :: figure4b_loop1)
        @ [ ret ])
      ~data
  in
  ignore prog;
  let scalar = run_image prog2 in
  let simd =
    run_image ~config:(Liquid_pipeline.Cpu.liquid_config ~lanes:8) prog2
  in
  check_bool "served once from ucode" true
    (simd.Liquid_pipeline.Cpu.stats.Liquid_machine.Stats.ucode_hits = 1);
  Alcotest.(check (array int))
    "tmp0 agrees"
    (read_array scalar prog2 "tmp0")
    (read_array simd prog2 "tmp0");
  Alcotest.(check (array int))
    "tmp1 agrees"
    (read_array scalar prog2 "tmp1")
    (read_array simd prog2 "tmp1")

let tests =
  [
    Alcotest.test_case "Table 4 microcode structure" `Quick test_table4_structure;
    Alcotest.test_case "Figure 4(B) semantics" `Quick test_figure4b_semantics;
  ]
