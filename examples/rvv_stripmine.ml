(* The vsetvl stripmine: what the RVV-style backend buys over both the
   fixed-width target and VLA predication.

   The same 15-element FIR loop as examples/vla_epilogue.ml — 15 is not
   a multiple of any hardware width (2, 4, 8, 16), so the fixed-width
   translator must refuse it (Bad_trip_count) and the loop runs scalar
   forever. The VLA backend masks the remainder: every body operation
   carries a governing predicate and the final iteration runs under a
   partial one. The RVV backend instead negotiates it: a vsetvl
   request-grant pair sets the vector-length CSR each iteration, body
   operations carry no mask at all, and the final trip simply receives
   a shortened grant. It also grades its own width — this loop keeps
   only two vector values live, so the translator grades an LMUL m2
   register group and emits 16-wide microcode on the 8-lane machine:
   all 15 elements in a single stripmine trip.

   Run with: dune exec examples/rvv_stripmine.exe
   (The printed output is pinned by examples/rvv_stripmine.expected.) *)

open Liquid_prog
open Liquid_scalarize
open Liquid_translate
open Liquid_pipeline
module Kernels = Liquid_workloads.Kernels
module Stats = Liquid_machine.Stats

let count = 15
let lanes = 8

(* c.(i) <- 5*a.(i) + b.(i): a SAXPY-shaped FIR tap. *)
let program =
  let loop =
    Kernels.saxpy ~name:"fir" ~count ~a:5 ~x:"a" ~y:"b" ~out:"c"
  in
  {
    Vloop.name = "stripmine";
    sections =
      Kernels.counted ~reg:(Liquid_isa.Reg.make 15) ~label:"fr" ~count:4
        [ Vloop.Loop loop ];
    data =
      [
        Kernels.warray "a" count (fun i -> i + 1);
        Kernels.warray "b" count (fun i -> 100 - i);
        Kernels.wzeros "c" count;
      ];
  }

let show_translation backend =
  let liquid = Codegen.liquid program in
  let image = Image.of_program liquid in
  let entry =
    match image.Image.region_entries with
    | (e, _) :: _ -> e
    | [] -> failwith "no region"
  in
  match Offline.translate_region_result ~backend ~image ~lanes ~entry () with
  | Ok (Translator.Translated u) ->
      Format.printf "  translated to %d uops:@." (Ucode.length u);
      Ucode.pp Format.std_formatter u
  | Ok (Translator.Aborted a) ->
      Format.printf "  ABORTED: %s@." (Abort.to_string a)
  | Error d -> Format.printf "  error: %s@." (Diag.to_string d)

let run_with backend =
  let liquid = Codegen.liquid program in
  let image = Image.of_program liquid in
  let config = { (Cpu.liquid_config ~lanes) with Cpu.backend } in
  let run = Cpu.run ~config image in
  let s = run.Cpu.stats in
  Format.printf
    "  vector insns %5d   region calls %d   served from microcode %d@."
    s.Stats.vector_insns s.Stats.region_calls s.Stats.ucode_hits;
  run

let array_of (run : Cpu.run) name =
  let liquid = Codegen.liquid program in
  let img = Image.of_program liquid in
  let addr = Image.array_addr img name in
  Array.init count (fun i ->
      Liquid_machine.Memory.read run.Cpu.memory
        ~addr:(addr + (i * 4))
        ~bytes:4 ~signed:true)

let () =
  Format.printf
    "The same %d-element loop on an %d-lane accelerator, under all three \
     backends.@.@."
    count lanes;

  Format.printf "[fixed-width backend]@.";
  show_translation Backend.fixed;
  let fixed = run_with Backend.fixed in

  Format.printf "@.[vla backend]@.";
  show_translation Backend.vla;
  let vla = run_with Backend.vla in

  Format.printf "@.[rvv backend]@.";
  show_translation Backend.rvv;
  let rvv = run_with Backend.rvv in

  let expect = Array.init count (fun i -> (5 * (i + 1)) + (100 - i)) in
  let ok which r = assert (array_of r "c" = expect) |> fun () -> which in
  Format.printf
    "@.Results identical and correct on all three machines: %s, %s, %s.@."
    (ok "fixed" fixed) (ok "vla" vla) (ok "rvv" rvv);
  Format.printf
    "The fixed-width target aborted (always safe — the scalar loop ran \
     instead).@.The VLA target ran ceil(%d/%d) = 2 predicated iterations per \
     call. The RVV@.target graded an LMUL m2 group from the loop's two live \
     vector values and ran@.all %d elements in ONE 16-wide stripmine trip — \
     no masks on any body op; the@.single vsetvl grant of %d did the whole \
     job. Same binary, three machines,@.bit-identical memory.@."
    count lanes count count
