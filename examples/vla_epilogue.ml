(* The predicated epilogue: what the vector-length-agnostic backend
   buys over the fixed-width one.

   A 15-element FIR loop is the smallest awkward case — 15 is not a
   multiple of any hardware width (2, 4, 8, 16), so the fixed-width
   translator must refuse it (Bad_trip_count) and the loop runs scalar
   forever. The VLA backend translates the very same binary into a
   whilelt-governed loop whose final iteration executes under a partial
   predicate: ceil(15/8) = 2 vector iterations on an 8-lane machine,
   zero scalar cleanup.

   Run with: dune exec examples/vla_epilogue.exe
   (The printed output is pinned by examples/vla_epilogue.expected.) *)

open Liquid_prog
open Liquid_scalarize
open Liquid_translate
open Liquid_pipeline
module Kernels = Liquid_workloads.Kernels
module Stats = Liquid_machine.Stats

let count = 15
let lanes = 8

(* c.(i) <- 5*a.(i) + b.(i): a SAXPY-shaped FIR tap. *)
let program =
  let loop =
    Kernels.saxpy ~name:"fir" ~count ~a:5 ~x:"a" ~y:"b" ~out:"c"
  in
  {
    Vloop.name = "epilogue";
    sections =
      Kernels.counted ~reg:(Liquid_isa.Reg.make 15) ~label:"fr" ~count:4
        [ Vloop.Loop loop ];
    data =
      [
        Kernels.warray "a" count (fun i -> i + 1);
        Kernels.warray "b" count (fun i -> 100 - i);
        Kernels.wzeros "c" count;
      ];
  }

let show_translation backend =
  let liquid = Codegen.liquid program in
  let image = Image.of_program liquid in
  let entry =
    match image.Image.region_entries with
    | (e, _) :: _ -> e
    | [] -> failwith "no region"
  in
  match Offline.translate_region_result ~backend ~image ~lanes ~entry () with
  | Ok (Translator.Translated u) ->
      Format.printf "  translated to %d uops:@." (Ucode.length u);
      Ucode.pp Format.std_formatter u
  | Ok (Translator.Aborted a) ->
      Format.printf "  ABORTED: %s@." (Abort.to_string a)
  | Error d -> Format.printf "  error: %s@." (Diag.to_string d)

let run_with backend =
  let liquid = Codegen.liquid program in
  let image = Image.of_program liquid in
  let config = { (Cpu.liquid_config ~lanes) with Cpu.backend } in
  let run = Cpu.run ~config image in
  let s = run.Cpu.stats in
  Format.printf
    "  vector insns %5d   region calls %d   served from microcode %d@."
    s.Stats.vector_insns s.Stats.region_calls s.Stats.ucode_hits;
  run

let array_of (run : Cpu.run) name =
  let liquid = Codegen.liquid program in
  let img = Image.of_program liquid in
  let addr = Image.array_addr img name in
  Array.init count (fun i ->
      Liquid_machine.Memory.read run.Cpu.memory
        ~addr:(addr + (i * 4))
        ~bytes:4 ~signed:true)

let () =
  Format.printf
    "A %d-element loop on an %d-lane accelerator: %d / %d leaves a \
     remainder,@.so whole-vector hardware cannot map it.@.@."
    count lanes count lanes;

  Format.printf "[fixed-width backend]@.";
  show_translation Backend.fixed;
  let fixed = run_with Backend.fixed in

  Format.printf "@.[vla backend]@.";
  show_translation Backend.vla;
  let vla = run_with Backend.vla in

  let expect = Array.init count (fun i -> (5 * (i + 1)) + (100 - i)) in
  let ok which r = assert (array_of r "c" = expect) |> fun () -> which in
  Format.printf
    "@.Results identical and correct on both machines: %s, %s.@."
    (ok "fixed" fixed) (ok "vla" vla);
  Format.printf
    "The fixed-width target aborted (always safe — the scalar loop ran \
     instead, 0@.vector instructions). The VLA target ran ceil(%d/%d) = 2 \
     predicated vector@.iterations per call and no scalar epilogue: the \
     last iteration simply ran@.under a 7-lane predicate. Same binary, \
     both machines, bit-identical memory.@."
    count lanes
