(* The forward-migration story the paper opens with: a conventional
   native SIMD binary is welded to one accelerator generation, while the
   Liquid binary migrates — forward to wider hardware, backward to
   narrower hardware, and all the way down to a core with no accelerator
   at all.

   Run with: dune exec examples/width_migration.exe *)

open Liquid_prog
open Liquid_scalarize
open Liquid_pipeline
module Kernels = Liquid_workloads.Kernels
module Stats = Liquid_machine.Stats

(* A program using an 8-element butterfly — a "generation 2" feature. *)
let program =
  let loop =
    Kernels.fft_stage ~name:"st" ~count:128 ~block:8 ~re:"re" ~im:"im" ~wr:"wr"
      ~wi:"wi"
  in
  {
    Vloop.name = "mig";
    sections =
      Kernels.counted ~reg:(Liquid_isa.Reg.make 15) ~label:"fr" ~count:6
        [ Vloop.Loop loop ];
    data =
      [
        Kernels.warray "re" 128 (fun i -> i * 3);
        Kernels.warray "im" 128 (fun i -> 200 - i);
        Kernels.warray "wr" 128 (fun i -> i mod 7);
        Kernels.warray "wi" 128 (fun i -> 3 - (i mod 3));
      ];
  }

let try_run name image config =
  match Cpu.run ~config image with
  | run ->
      Format.printf "  %-34s OK    (%7d cycles, %5d vector insns)@." name
        run.Cpu.stats.Stats.cycles run.Cpu.stats.Stats.vector_insns
  | exception Sem.Sigill msg -> Format.printf "  %-34s FAULT (%s)@." name msg
  | exception Liquid_pipeline.Diag.Error d ->
      Format.printf "  %-34s ERROR (%s)@." name
        (Liquid_pipeline.Diag.to_string d)

let () =
  (* The conventional route: one binary per accelerator width. *)
  Format.printf "Native binary compiled for a 16-lane accelerator:@.";
  let native16 = Image.of_program (Codegen.native ~width:16 program) in
  try_run "on the 16-lane machine" native16 (Cpu.native_config ~lanes:16);
  try_run "on an 8-lane machine" native16 (Cpu.native_config ~lanes:8);
  try_run "on a scalar machine" native16 Cpu.scalar_config;
  (match Codegen.native ~width:4 program with
  | _ -> Format.printf "  (4-lane native binary generated?!)@."
  | exception Codegen.Unsupported_width msg ->
      Format.printf "  4-lane native binary:              CANNOT BUILD (%s)@." msg);

  (* The Liquid route: one binary, every machine. *)
  Format.printf "@.Liquid binary (compiled once):@.";
  let liquid = Image.of_program (Codegen.liquid program) in
  List.iter
    (fun lanes ->
      try_run
        (Printf.sprintf "on a %d-lane machine" lanes)
        liquid (Cpu.liquid_config ~lanes))
    [ 16; 8; 4; 2 ];
  try_run "on a scalar machine" liquid Cpu.scalar_config;
  Format.printf
    "@.On 4- and 2-lane machines the 8-wide butterfly cannot map, so the \
     translator aborts and the loop simply runs in its scalar form — \
     slower, but correct. That is the delayed-binding guarantee.@."
