(* Documentation lint, attached to both the [doc] and [runtest] aliases.

   odoc is not a build dependency of this repo, so ill-formed doc
   comments would otherwise only surface on a contributor's machine
   that happens to have it installed. This check enforces the part of
   the contract that matters for `dune build @doc` to stay green,
   using nothing but the source text:

   - every interface opens with a module-level [(** ... *)] synopsis;
   - comments nest correctly (an unterminated comment is a hard odoc
     error);
   - markup delimiters inside doc comments are balanced — [{]/[}] for
     odoc markup, square brackets for code spans;
   - in the libraries held to full per-item coverage (lib/visa,
     lib/scalarize, lib/workloads, lib/fuzz, lib/translate, and the
     list below as it grows),
     every exported [val] carries a doc comment.

   Exit status is non-zero with a file:line listing when any rule is
   violated, so `dune runtest` fails on documentation rot. *)

let errors = ref 0

let err file line fmt =
  incr errors;
  Printf.ksprintf (fun m -> Printf.eprintf "%s:%d: %s\n" file line m) fmt

(* Directories whose .mli files must document every exported val. Add a
   directory here once its interfaces are brought to full coverage. *)
let full_coverage = [ "visa"; "scalarize"; "workloads"; "fuzz"; "translate" ]

let read_lines file =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  String.split_on_char '\n' s

let starts_with p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

let strip s = String.trim s

(* Comment structure over the whole file: returns per-line comment
   depth after the line, and flags unbalanced nesting. *)
let check_comment_nesting file lines =
  let depth = ref 0 in
  List.iteri
    (fun i line ->
      let ln = i + 1 in
      let n = String.length line in
      let j = ref 0 in
      while !j < n - 1 do
        (match (line.[!j], line.[!j + 1]) with
        | '(', '*' ->
            incr depth;
            incr j
        | '*', ')' ->
            decr depth;
            incr j;
            if !depth < 0 then begin
              err file ln "comment terminator with no open comment";
              depth := 0
            end
        | _ -> ());
        incr j
      done)
    lines;
  if !depth <> 0 then err file (List.length lines) "unterminated comment"

(* Balanced odoc markup within each doc comment: braces for markup
   ({1 ...}, {!...}, {e ...}) and brackets for code spans. *)
let check_markup file lines =
  let in_doc = ref false in
  let braces = ref 0 and brackets = ref 0 in
  let doc_start = ref 0 in
  List.iteri
    (fun i line ->
      let ln = i + 1 in
      let n = String.length line in
      let j = ref 0 in
      while !j < n do
        (if (not !in_doc) && !j < n - 2 && line.[!j] = '(' && line.[!j + 1] = '*'
            && line.[!j + 2] = '*'
         then begin
           in_doc := true;
           doc_start := ln;
           braces := 0;
           brackets := 0;
           j := !j + 2
         end
         else if !in_doc && !j < n - 1 && line.[!j] = '*' && line.[!j + 1] = ')'
         then begin
           if !braces <> 0 then
             err file !doc_start "unbalanced '{' '}' in doc comment";
           if !brackets <> 0 then
             err file !doc_start "unbalanced '[' ']' in doc comment";
           in_doc := false;
           incr j
         end
         else if !in_doc then
           match line.[!j] with
           | '\\' -> incr j (* \[ \] \{ \} are odoc escapes *)
           | '{' -> incr braces
           | '}' -> decr braces
           | '[' -> incr brackets
           | ']' -> decr brackets
           | _ -> ());
        incr j
      done)
    lines

let check_module_doc file lines =
  let rec first = function
    | [] -> err file 1 "empty interface"
    | l :: rest -> if strip l = "" then first rest else
        if not (starts_with "(**" (strip l)) then
          err file 1 "interface does not open with a module-level (** ... *) synopsis"
  in
  first lines

(* Every exported val documented: the previous non-blank line ends a
   comment, or a doc comment follows within the declaration. *)
let check_val_coverage file lines =
  let arr = Array.of_list lines in
  let n = Array.length arr in
  Array.iteri
    (fun i line ->
      if starts_with "val " line then begin
        let name =
          match String.index_opt line ':' with
          | Some c -> strip (String.sub line 4 (c - 4))
          | None -> strip (String.sub line 4 (String.length line - 4))
        in
        let prev =
          let rec back k = if k < 0 then None else
            if strip arr.(k) = "" then back (k - 1) else Some arr.(k)
          in
          back (i - 1)
        in
        let prev_doc =
          match prev with
          | Some p ->
              let p = strip p in
              String.length p >= 2 && String.sub p (String.length p - 2) 2 = "*)"
          | None -> false
        in
        let next_doc =
          let rec fwd k =
            if k >= n || k > i + 24 then false
            else
              let s = strip arr.(k) in
              if starts_with "(**" s then true
              else if k > i
                      && (s = ""
                         || starts_with "val " s
                         || starts_with "type " s
                         || starts_with "module " s
                         || starts_with "exception " s)
              then false
              else fwd (k + 1)
          in
          fwd i
        in
        if not (prev_doc || next_doc) then
          err file (i + 1) "val %s has no doc comment" name
      end)
    arr

let rec walk dir f =
  Array.iter
    (fun entry ->
      let path = Filename.concat dir entry in
      if Sys.is_directory path then walk path f
      else if Filename.check_suffix entry ".mli" then f path)
    (Sys.readdir dir)

let () =
  let root = if Array.length Sys.argv > 1 then Sys.argv.(1) else "../lib" in
  let checked = ref 0 in
  walk root (fun file ->
      incr checked;
      let lines = read_lines file in
      check_module_doc file lines;
      check_comment_nesting file lines;
      check_markup file lines;
      let dir = Filename.basename (Filename.dirname file) in
      if List.mem dir full_coverage then check_val_coverage file lines);
  if !checked = 0 then begin
    Printf.eprintf "doc_lint: no .mli files under %s\n" root;
    exit 1
  end;
  if !errors > 0 then begin
    Printf.eprintf "doc_lint: %d error(s) in %d interface(s)\n" !errors !checked;
    exit 1
  end
  else Printf.printf "doc_lint: %d interfaces clean\n" !checked
